//! The streaming ingest engine: N independent writer shards (vehicle-hash
//! routing) feeding the PRESS pipeline (match → reformat → HSC + BTC),
//! each behind its own crash-safe WAL.
//!
//! # Failure domains
//!
//! A failure domain is a **shard**, not the fleet. Each shard owns its
//! own CRC-framed journal (`ingest.<gen>.s<k>.wal`), its own
//! [`DurabilityPolicy`] accumulators, its own session map and share of
//! the memory budget, and its own [`IngestStats`]. A `StorageFull` /
//! sticky-I/O / corrupt-journal fault on shard *k* surfaces as
//! [`ServeError::ShardDegraded`] naming *k*; pushes routed to healthy
//! shards keep acking, the published corpus keeps serving, and the
//! degraded shard's rejections never leak into healthy shards'
//! counters. With `shards == 1` (the default) the engine behaves —
//! journal bytes included — exactly like the historical single-writer
//! engine, and errors stay un-wrapped.
//!
//! # Ack and durability contract
//!
//! [`IngestEngine::push`] vets each fix ([`Session::vet`]), journals the
//! accepted ones in the owning shard, and only then buffers them. The
//! configured [`DurabilityPolicy`] group-commits each shard's journal
//! independently (byte / stream-time thresholds), and acks never
//! overstate what happened: a fix is [`Ack::Accepted`] only when a
//! completed fsync covers its frame, and [`Ack::Journaled`] (written,
//! not yet synced) otherwise — the per-shard durability watermark says
//! which journaled offsets have become durable since. Rejected and
//! coalesced fixes are acked without journaling — replays reproduce the
//! identical decisions because validation only depends on journaled
//! state.
//!
//! # Determinism across shard counts
//!
//! The stream clock (`max_time`) is global; every shard-scoped decision
//! (idle sweeps, vetting) happens after catching the shard up to it, so
//! segmentation is independent of the shard count. Finalized pieces
//! carry a canonical merge key — `(vehicle, segment sequence, piece)` —
//! and the published corpus is built in key order, so its bytes are
//! identical for any shard count and any flush-worker count. Each
//! shard's journal carries `Clock` frames whenever the global clock
//! advanced past what the shard last journaled, so per-shard replay
//! reproduces the same sweeps without reading any other shard's journal.
//!
//! # Recovery
//!
//! [`IngestEngine::open`] reads the `MANIFEST` to find the committed
//! generation and shard count, then recovers every shard **in
//! parallel** on the shared work-steal loop: load the shard's
//! checkpointed corpus slice (`corpus.<gen>.s<k>.press`), replay its
//! journal through the exact same code path as live ingest, truncate
//! any torn tail. Artifacts from any other generation are uncommitted
//! checkpoint leftovers and are garbage-collected. The rebuilt engine
//! is in the same state a clean run would reach after pushing exactly
//! the acked prefix of each shard — the recovery proptests assert the
//! resulting corpora are byte-identical. Directories written by the
//! pre-shard format (a v1 manifest, un-suffixed artifact names) open
//! with `shards == 1` and are migrated to the sharded naming by the
//! next checkpoint; opening them with any other shard count — or a
//! sharded directory with a different count — is a typed
//! [`ServeError::Config`] (resharding is not supported).
//!
//! # Incremental checkpoints
//!
//! [`IngestEngine::checkpoint`] flushes pending segments, then commits
//! the corpus shard files and the shrunk per-shard journals as **one
//! atomic set**: everything is written under the next generation number
//! and a single [`crate::manifest`] rename flips recovery to the new
//! set. A shard with no new finalized segments since the last
//! generation does not rewrite its corpus slice — the previous
//! generation's file is hard-linked under the next generation's name —
//! so checkpoint cost and crash blast-radius scale with *dirty* shards,
//! not corpus size. A crash at any byte of the checkpoint lands on a
//! complete generation: the old shard set with the full old journals,
//! or the new set with exactly its in-flight tails.

use crate::durability::DurabilityPolicy;
use crate::manifest;
use crate::session::{Disposition, QuarantineReason, Session, SessionPolicy};
use crate::wal::{Wal, WalError, WalRecord};
use press_core::reformat::{reformat, PathSample};
use press_core::spatial::online::OnlineSpCompressor;
use press_core::store::TrajectoryStore;
use press_core::temporal::online::OnlineBtc;
use press_core::types::TemporalSequence;
use press_core::{
    parallel::{work_steal_map, work_steal_map_eager},
    query::QueryEngine,
};
use press_core::{CompressedTrajectory, Press, PressError};
use press_matcher::{GpsSample, MapMatcher, MatcherError};
use press_network::{LazySpCache, Point};
use press_store::io::{self as store_io, IoBackend};
use press_store::{ByteReader, ByteWriter};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors surfaced by the ingest engine.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure outside the journal.
    Io(String),
    /// Journal failure (see [`WalError`]).
    Wal(WalError),
    /// Compression/query-layer failure.
    Press(PressError),
    /// Invalid engine configuration.
    Config(String),
    /// The checkpoint manifest is damaged or inconsistent with the
    /// directory contents.
    Manifest(String),
    /// The device is out of space (`ENOSPC`). Persistent — retrying
    /// cannot free the disk — so the engine refuses the write with
    /// state unchanged and keeps serving queries; ingest resumes once
    /// space returns.
    StorageFull(String),
    /// A transient I/O failure survived the whole retry budget. The
    /// rejected fix was not ingested; the engine state is unchanged
    /// and the caller may re-push later.
    Backpressure {
        /// The last underlying I/O error message.
        detail: String,
        /// Retries performed before giving up.
        retries: u32,
    },
    /// A shard-scoped durable write failed on a multi-shard engine:
    /// only `shard` is degraded — pushes routed to other shards keep
    /// acking and the published corpus keeps serving. `cause` is the
    /// underlying typed failure ([`ServeError::StorageFull`],
    /// [`ServeError::Backpressure`], …); the fix was **not** ingested
    /// and the shard stays recoverable. Single-shard engines surface
    /// the cause directly, un-wrapped.
    ShardDegraded {
        /// The shard whose journal refused the write.
        shard: usize,
        /// The underlying failure.
        cause: Box<ServeError>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "ingest I/O error: {msg}"),
            ServeError::Wal(e) => write!(f, "{e}"),
            ServeError::Press(e) => write!(f, "{e}"),
            ServeError::Config(msg) => write!(f, "invalid ingest config: {msg}"),
            ServeError::Manifest(msg) => write!(f, "ingest manifest error: {msg}"),
            ServeError::StorageFull(msg) => write!(f, "ingest device out of space: {msg}"),
            ServeError::Backpressure { detail, retries } => {
                write!(f, "ingest backpressure after {retries} retries: {detail}")
            }
            ServeError::ShardDegraded { shard, cause } => {
                write!(f, "ingest shard {shard} degraded: {cause}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Unwraps [`ServeError::ShardDegraded`] layers down to the
    /// underlying failure (identity for every other variant).
    pub fn root_cause(&self) -> &ServeError {
        match self {
            ServeError::ShardDegraded { cause, .. } => cause.root_cause(),
            other => other,
        }
    }

    /// The degraded shard, when this error is shard-scoped.
    pub fn degraded_shard(&self) -> Option<usize> {
        match self {
            ServeError::ShardDegraded { shard, .. } => Some(*shard),
            _ => None,
        }
    }

    /// True when the root cause is [`ServeError::StorageFull`] —
    /// matches whether or not the error is wrapped in
    /// [`ServeError::ShardDegraded`].
    pub fn is_storage_full(&self) -> bool {
        matches!(self.root_cause(), ServeError::StorageFull(_))
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::StorageFull(msg) => ServeError::StorageFull(msg),
            other => ServeError::Wal(other),
        }
    }
}

impl From<PressError> for ServeError {
    fn from(e: PressError) -> Self {
        ServeError::Press(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        if store_io::is_storage_full(&e) {
            ServeError::StorageFull(e.to_string())
        } else {
            ServeError::Io(e.to_string())
        }
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Engine configuration. Compression parameters (θ, BTC bounds,
/// decomposer) come from the [`Press`] handle, not from here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Input-hardening policy applied per fix.
    pub policy: SessionPolicy,
    /// Seconds of *stream* time (not wall clock — recovery must replay
    /// identically) after which a silent session is finalized; `<= 0.0`
    /// disables idle finalization.
    pub idle_timeout: f64,
    /// Segment rollover size: a session's buffer is cut into a pending
    /// segment when it reaches this many points. `0` disables (unbounded
    /// sessions; not recommended for long-lived fleets).
    pub max_session_points: usize,
    /// Trajectories per block in the published corpus.
    pub block_size: usize,
    /// Worker threads for parallel segment matching in
    /// [`IngestEngine::flush`] and parallel shard recovery in
    /// [`IngestEngine::open`].
    pub threads: usize,
    /// Deterministic matcher budget (Viterbi lattice transitions); a
    /// segment whose lattice exceeds this is shed, not matched. `0`
    /// disables shedding.
    pub max_lattice_work: u64,
    /// Degraded-mode salvage: how many times a segment may be split on
    /// `BrokenChain`/`InvalidSample` before the remainder is dropped.
    pub max_salvage_splits: usize,
    /// Most recent quarantined fixes kept for inspection.
    pub quarantine_log_cap: usize,
    /// When each shard fsyncs its journal and how it retries transient
    /// write failures (see [`DurabilityPolicy`]); every shard runs its
    /// own independent instance of this policy. Only sync *timing* —
    /// never corpus bytes — depends on this.
    pub durability: DurabilityPolicy,
    /// Memory budget: total points buffered across live sessions,
    /// divided evenly across shards (each shard enforces
    /// `ceil(max_buffered_points / shards)`). When an accepted fix
    /// pushes a shard past its share, that shard's least-recently-active
    /// sessions are evicted (finalized to the pending queue — their
    /// points are already WAL-backed) until the budget holds. `0`
    /// disables. Eviction is driven purely by journaled state, so
    /// replay reproduces it exactly.
    pub max_buffered_points: usize,
    /// Memory budget: live session count (per-shard share, same LRU
    /// eviction). `0` disables.
    pub max_sessions: usize,
    /// Most recent evicted vehicle ids kept for inspection (the
    /// eviction-order determinism proptest reads this).
    pub eviction_log_cap: usize,
    /// Independent writer shards. Vehicles are routed by hash, and each
    /// shard owns its own journal, durability accumulators, sessions,
    /// memory-budget share, and stats — a disk fault degrades one
    /// shard, not the fleet. `1` (the default) reproduces the
    /// historical single-writer engine byte-for-byte. A directory is
    /// committed to its shard count at creation; reopening with a
    /// different count is a typed error.
    pub shards: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            policy: SessionPolicy::default(),
            idle_timeout: 600.0,
            max_session_points: 4096,
            block_size: 8,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            max_lattice_work: 2_000_000,
            max_salvage_splits: 8,
            quarantine_log_cap: 1024,
            durability: DurabilityPolicy::default(),
            max_buffered_points: 0,
            max_sessions: 0,
            eviction_log_cap: 1024,
            shards: 1,
        }
    }
}

/// The engine's answer for one pushed fix. Acks never lie about
/// durability: `Accepted` means the fix's frame is covered by a
/// completed fsync; `Journaled` means it is written but its covering
/// group-commit sync has not happened yet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ack {
    /// Fix journaled, buffered, **and durable**: a sync covering its
    /// frame has succeeded (`offset <= durable_offset()`), so the fix
    /// survives power loss, not just process death.
    Accepted { offset: u64 },
    /// Fix journaled and buffered, not yet synced. `offset` is the
    /// owning shard's journal length with this fix's frame included;
    /// the fix becomes durable when a later group-commit sync, explicit
    /// [`IngestEngine::sync`], or checkpoint advances that shard's
    /// durability watermark past it. A *process* crash cannot lose it
    /// (the bytes are in the OS page cache); power loss before the
    /// covering sync can.
    Journaled { offset: u64 },
    /// Harmless defect repaired per policy (duplicate coalesced); the
    /// fix is intentionally not journaled.
    Repaired,
    /// Fix rejected into quarantine with a typed reason.
    Quarantined(QuarantineReason),
}

impl Ack {
    /// The journal offset for ingested fixes (`Accepted`/`Journaled`),
    /// `None` for repaired or quarantined ones.
    pub fn offset(&self) -> Option<u64> {
        match *self {
            Ack::Accepted { offset } | Ack::Journaled { offset } => Some(offset),
            Ack::Repaired | Ack::Quarantined(_) => None,
        }
    }

    /// True when the fix was ingested (journaled and buffered),
    /// whether or not its covering sync has happened yet.
    pub fn is_ingested(&self) -> bool {
        self.offset().is_some()
    }
}

/// A quarantined fix, kept in a bounded log for observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineRecord {
    /// Vehicle whose fix was rejected.
    pub vehicle: u64,
    /// The offending fix, verbatim.
    pub sample: GpsSample,
    /// Why it was rejected.
    pub reason: QuarantineReason,
}

/// Ingest counters. Kept **per shard** — a faulted shard's rejections
/// never appear in a healthy shard's counters
/// ([`IngestEngine::shard_stats`]); [`IngestEngine::stats`] is the
/// summed fleet-wide view. Observability only — counters are rebuilt
/// from the journal on recovery, so quarantine/repair counts (which are
/// never journaled) restart at zero after a crash.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestStats {
    /// Fixes accepted (journaled and buffered), including replayed ones.
    pub points_accepted: u64,
    /// Fixes repaired by coalescing.
    pub points_repaired: u64,
    /// Fixes quarantined, by [`QuarantineReason::index`].
    pub points_quarantined: [u64; 4],
    /// Segments finalized by the idle sweep.
    pub segments_idle: u64,
    /// Segments cut by the session-size rollover.
    pub segments_cap: u64,
    /// Segments finalized explicitly.
    pub segments_explicit: u64,
    /// Matched pieces compressed into the corpus.
    pub pieces_compressed: u64,
    /// Salvage splits performed across all flushed segments.
    pub salvage_splits: u64,
    /// Pieces dropped (unmatchable even after salvage).
    pub pieces_dropped: u64,
    /// Of the dropped pieces, how many were shed by the lattice budget.
    pub pieces_shed: u64,
    /// Successful journal fsyncs (group-commit, explicit, checkpoint).
    pub sync_calls: u64,
    /// Frames made durable by those syncs (group-commit batch total;
    /// average batch = `synced_frames / sync_calls`).
    pub synced_frames: u64,
    /// Largest single group-commit batch, in frames.
    pub max_sync_batch: u64,
    /// Transient I/O failures that were retried (append or sync).
    pub io_retries: u64,
    /// Sync attempts that failed even after retries (the engine stays
    /// up; the frames remain journaled-not-durable until a later sync
    /// succeeds).
    pub sync_failures: u64,
    /// Sessions evicted by the memory budget (LRU order).
    pub sessions_evicted: u64,
    /// Pushes refused with [`ServeError::Backpressure`].
    pub backpressure_rejections: u64,
    /// Pushes refused with [`ServeError::StorageFull`].
    pub storage_full_rejections: u64,
}

impl IngestStats {
    /// Total quarantined fixes across all reasons.
    pub fn total_quarantined(&self) -> u64 {
        self.points_quarantined.iter().sum()
    }

    /// Mean group-commit batch size in frames (0.0 before any sync).
    pub fn avg_sync_batch(&self) -> f64 {
        if self.sync_calls == 0 {
            0.0
        } else {
            self.synced_frames as f64 / self.sync_calls as f64
        }
    }

    /// Adds `other`'s counters into `self` (the summed fleet-wide view;
    /// `max_sync_batch` takes the max).
    pub fn accumulate(&mut self, other: &IngestStats) {
        self.points_accepted += other.points_accepted;
        self.points_repaired += other.points_repaired;
        for (mine, theirs) in self
            .points_quarantined
            .iter_mut()
            .zip(other.points_quarantined)
        {
            *mine += theirs;
        }
        self.segments_idle += other.segments_idle;
        self.segments_cap += other.segments_cap;
        self.segments_explicit += other.segments_explicit;
        self.pieces_compressed += other.pieces_compressed;
        self.salvage_splits += other.salvage_splits;
        self.pieces_dropped += other.pieces_dropped;
        self.pieces_shed += other.pieces_shed;
        self.sync_calls += other.sync_calls;
        self.synced_frames += other.synced_frames;
        self.max_sync_batch = self.max_sync_batch.max(other.max_sync_batch);
        self.io_retries += other.io_retries;
        self.sync_failures += other.sync_failures;
        self.sessions_evicted += other.sessions_evicted;
        self.backpressure_rejections += other.backpressure_rejections;
        self.storage_full_rejections += other.storage_full_rejections;
    }
}

/// What [`IngestEngine::open`] found on disk and rebuilt, summed across
/// all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Trajectories loaded from the checkpointed corpus shard files.
    pub corpus_trajectories: usize,
    /// `Point` frames replayed from the journals.
    pub replayed_points: u64,
    /// `Finalize`/`FinalizeAll` frames replayed.
    pub replayed_finalizes: u64,
    /// Bytes truncated from the journals' torn tails.
    pub torn_bytes: u64,
    /// True when no journal existed on any shard (fresh directory).
    pub wal_was_fresh: bool,
    /// Live sessions rebuilt by the replay.
    pub sessions_rebuilt: usize,
    /// Points sitting in session buffers or pending segments after the
    /// replay (accepted but not yet in the corpus).
    pub points_in_flight: usize,
}

/// Canonical merge key of one finalized piece: the published corpus is
/// built in `(rank, vehicle, seg, piece)` order, which is independent
/// of shard count, flush batching, and thread count. `rank 0` pins
/// trajectories inherited from a pre-key corpus in their original
/// position (their `vehicle` field is the original index); everything
/// cut by this engine is `rank 1` with its real vehicle id, per-vehicle
/// segment sequence number, and salvage piece index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TrajKey {
    rank: u8,
    vehicle: u64,
    seg: u64,
    piece: u32,
}

/// Name of the corpus extra section carrying the merge keys and the
/// per-vehicle segment-sequence counters (see `encode_ingest_section`).
const INGEST_SECTION: &str = "ingest";
/// Version tag of the `ingest` section payload.
const INGEST_SECTION_VERSION: u32 = 1;

/// Serializes a shard's merge keys (aligned with its trajectory order)
/// and per-vehicle `next_seg` counters into the corpus `ingest`
/// section. Counters are sorted by vehicle so the bytes are canonical.
fn encode_ingest_section(keys: &[TrajKey], next_seg: &HashMap<u64, u64>) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(24 + keys.len() * 21 + next_seg.len() * 16);
    w.put_u32(INGEST_SECTION_VERSION);
    w.put_u64(keys.len() as u64);
    for k in keys {
        w.put_u8(k.rank);
        w.put_u64(k.vehicle);
        w.put_u64(k.seg);
        w.put_u32(k.piece);
    }
    let mut counters: Vec<(u64, u64)> = next_seg.iter().map(|(&v, &s)| (v, s)).collect();
    counters.sort_unstable();
    w.put_u64(counters.len() as u64);
    for (v, s) in counters {
        w.put_u64(v);
        w.put_u64(s);
    }
    w.into_bytes()
}

/// Parses the `ingest` section back. `n_trajs` is the number of
/// trajectories in the corpus file — the key list must match it exactly
/// or the sidecar is corrupt.
fn decode_ingest_section(
    bytes: &[u8],
    n_trajs: usize,
) -> Result<(Vec<TrajKey>, HashMap<u64, u64>)> {
    fn bad(e: impl fmt::Display) -> ServeError {
        ServeError::Manifest(format!("corpus ingest section: {e}"))
    }
    let mut r = ByteReader::new(bytes);
    let version = r.get_u32().map_err(bad)?;
    if version != INGEST_SECTION_VERSION {
        return Err(bad(format_args!("unsupported version {version}")));
    }
    let n = r.get_u64().map_err(bad)? as usize;
    if n != n_trajs {
        return Err(bad(format_args!(
            "key count {n} does not match corpus trajectory count {n_trajs}"
        )));
    }
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let rank = r.get_u8().map_err(bad)?;
        if rank > 1 {
            return Err(bad(format_args!("unknown key rank {rank}")));
        }
        keys.push(TrajKey {
            rank,
            vehicle: r.get_u64().map_err(bad)?,
            seg: r.get_u64().map_err(bad)?,
            piece: r.get_u32().map_err(bad)?,
        });
    }
    let m = r.get_u64().map_err(bad)? as usize;
    let mut next_seg = HashMap::with_capacity(m);
    for _ in 0..m {
        let vehicle = r.get_u64().map_err(bad)?;
        let seg = r.get_u64().map_err(bad)?;
        next_seg.insert(vehicle, seg);
    }
    r.expect_end("ingest section").map_err(bad)?;
    Ok((keys, next_seg))
}

/// A finalized-but-unmatched segment awaiting [`IngestEngine::flush`],
/// already stamped with its canonical merge identity.
#[derive(Debug, Clone)]
struct PendingSegment {
    vehicle: u64,
    /// Per-vehicle segment sequence number, assigned at cut time.
    seg: u64,
    samples: Vec<GpsSample>,
}

/// Per-segment outcome from the parallel matching stage.
struct SegmentOutcome {
    compressed: Vec<CompressedTrajectory>,
    splits: u64,
    dropped: u64,
    shed: u64,
}

/// Background re-persistence of a [`LazySpCache`] hot-tree set, ticked
/// by the **stream clock** (never wall clock — replay must be able to
/// reproduce the same saves): whenever `max_time` has advanced at least
/// `interval` past the last save, the cache's resident trees are written
/// to `path`, so a process restarted next to the artifact warms its SP
/// cache instead of paying cold Dijkstras.
struct HotTreePersist {
    cache: Arc<LazySpCache>,
    path: PathBuf,
    interval: f64,
    /// Stream time of the last save; `NEG_INFINITY` arms the timer on
    /// the first accepted fix.
    last_save: f64,
}

/// Maps a timestamp to a key that sorts like the timestamp (total order
/// over all non-NaN floats), for the idle-session index.
fn time_key(t: f64) -> u64 {
    let bits = t.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// SplitMix64 finalizer — the vehicle-to-shard route. A fixed public
/// mix (not a sum or modulus of the raw id) so that dense fleet ids
/// spread evenly instead of striping.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-shard budget share: `ceil(total / shards)`, `0` stays disabled.
fn budget_share(total: usize, shards: usize) -> usize {
    if total == 0 {
        0
    } else {
        total.div_ceil(shards)
    }
}

/// One independent writer shard: its own journal, durability
/// accumulators, session map, memory-budget share, canonical-key
/// corpus slice, and counters. All stream-clock decisions take the
/// *global* clock as a parameter — the shard itself never owns time.
struct Shard {
    wal: Wal,
    /// Journal bytes appended since this shard's last successful fsync.
    unsynced_bytes: u64,
    /// Frames appended since this shard's last successful fsync.
    unsynced_frames: u64,
    /// Stream time of this shard's last successful fsync
    /// (`NEG_INFINITY` arms the interval trigger).
    last_sync_time: f64,
    /// Durability watermark: every frame of this shard's journal ending
    /// at or before this offset is covered by a completed fsync.
    durable_offset: u64,
    /// Highest stream time this shard's journal already encodes (via
    /// `Clock` frames or its own `Point` timestamps) — the clock a
    /// per-shard replay would have at the journal's tail.
    journaled_clock: f64,
    /// True when a pre-append sweep cut a session at a global clock the
    /// journal doesn't encode yet: the next append must be preceded by
    /// a `Clock` frame so replay performs the same cut before the same
    /// record. Sweeps that cut nothing need no frame — a replay clock
    /// lagging the global one sweeps the same (empty) set, because
    /// expiry is monotone in the clock. With one shard the global clock
    /// never outruns the journal, so the hot path never adds frames.
    needs_clock: bool,
    /// Points currently buffered across this shard's live sessions.
    buffered: usize,
    sessions: HashMap<u64, Session>,
    /// Sessions ordered by last-accepted timestamp: `(time_key(last.t),
    /// vehicle)`. Exactly the sessions with `last.is_some()`.
    idle: BTreeSet<(u64, u64)>,
    /// Per-vehicle segment sequence counters — the `seg` component of
    /// the canonical merge key. Persisted in the corpus `ingest`
    /// section so recovery numbers future segments exactly like an
    /// uninterrupted run.
    next_seg: HashMap<u64, u64>,
    pending: Vec<PendingSegment>,
    /// Canonical merge keys, aligned index-for-index with `finished`
    /// and kept sorted.
    keys: Vec<TrajKey>,
    /// This shard's slice of the compressed corpus, in key order.
    finished: Vec<CompressedTrajectory>,
    /// True when this shard cut a segment since the last checkpoint —
    /// its corpus slice (trajectories and/or counters) needs a rewrite;
    /// clean shards hard-link the previous generation's file instead.
    dirty: bool,
    /// This shard's share of [`IngestConfig::max_buffered_points`].
    budget_points: usize,
    /// This shard's share of [`IngestConfig::max_sessions`].
    budget_sessions: usize,
    stats: IngestStats,
}

impl Shard {
    fn new(
        wal: Wal,
        config: &IngestConfig,
        keys: Vec<TrajKey>,
        finished: Vec<CompressedTrajectory>,
        next_seg: HashMap<u64, u64>,
    ) -> Shard {
        Shard {
            wal,
            unsynced_bytes: 0,
            unsynced_frames: 0,
            last_sync_time: f64::NEG_INFINITY,
            durable_offset: 0,
            journaled_clock: f64::NEG_INFINITY,
            needs_clock: false,
            buffered: 0,
            sessions: HashMap::new(),
            idle: BTreeSet::new(),
            next_seg,
            pending: Vec::new(),
            keys,
            finished,
            dirty: false,
            budget_points: budget_share(config.max_buffered_points, config.shards),
            budget_sessions: budget_share(config.max_sessions, config.shards),
            stats: IngestStats::default(),
        }
    }

    fn vet(&self, policy: &SessionPolicy, vehicle: u64, sample: &GpsSample) -> Disposition {
        match self.sessions.get(&vehicle) {
            Some(sess) => sess.vet(policy, sample),
            None => Session::new(vehicle).vet(policy, sample),
        }
    }

    /// Queues a non-empty cut under the vehicle's next segment sequence
    /// number and marks the shard's corpus slice dirty.
    fn cut_segment(&mut self, vehicle: u64, samples: Vec<GpsSample>) {
        if samples.is_empty() {
            return;
        }
        let seg = self.next_seg.entry(vehicle).or_insert(0);
        let s = *seg;
        *seg += 1;
        self.dirty = true;
        self.pending.push(PendingSegment {
            vehicle,
            seg: s,
            samples,
        });
    }

    /// Applies an accepted fix: buffer, segment rollover, stream clock,
    /// idle sweep, memory budget. Shared verbatim by live ingest and
    /// journal replay; `clock` is the global stream clock live and the
    /// journal-local clock on replay.
    fn apply_accept(
        &mut self,
        config: &IngestConfig,
        vehicle: u64,
        sample: GpsSample,
        arrival: u64,
        clock: &mut f64,
        eviction_log: &mut VecDeque<u64>,
    ) {
        self.stats.points_accepted += 1;
        let sess = self
            .sessions
            .entry(vehicle)
            .or_insert_with(|| Session::new(vehicle));
        if let Some(prev) = sess.last {
            self.idle.remove(&(time_key(prev.t), vehicle));
        }
        sess.accept(sample, arrival);
        self.buffered += 1;
        self.idle.insert((time_key(sample.t), vehicle));
        if config.max_session_points > 0 && sess.samples.len() >= config.max_session_points {
            let samples = self
                .sessions
                .get_mut(&vehicle)
                .expect("session was just touched")
                .take_segment();
            self.buffered -= samples.len();
            self.cut_segment(vehicle, samples);
            self.stats.segments_cap += 1;
        }
        if sample.t > *clock {
            *clock = sample.t;
        }
        self.sweep_idle(config, *clock);
        self.enforce_memory_budget(config.eviction_log_cap, eviction_log);
    }

    /// Finalizes every session whose last accepted fix is more than
    /// `idle_timeout` behind `clock` (the global stream clock live, the
    /// journal-local clock on replay). Returns the number of sessions
    /// closed, so the caller can tell whether replay needs the sweep
    /// clock journaled.
    fn sweep_idle(&mut self, config: &IngestConfig, clock: f64) -> usize {
        if config.idle_timeout <= 0.0 {
            return 0;
        }
        let mut closed = 0;
        loop {
            let Some(&(_, vehicle)) = self.idle.iter().next() else {
                return closed;
            };
            let last_t = self.sessions[&vehicle]
                .last
                .expect("idle-indexed session has a last fix")
                .t;
            if last_t + config.idle_timeout >= clock {
                return closed;
            }
            self.close_session(vehicle);
            self.stats.segments_idle += 1;
            closed += 1;
        }
    }

    /// LRU eviction for this shard's memory-budget share: while either
    /// share is exceeded, the session with the oldest last-accepted fix
    /// is finalized to the pending queue — exactly what the idle sweep
    /// would eventually do, just earlier. Every input derives from
    /// journaled state, so replay evicts the same sessions in the same
    /// order, and eviction is invisible in the recovered corpus.
    fn enforce_memory_budget(&mut self, log_cap: usize, eviction_log: &mut VecDeque<u64>) {
        if self.budget_points == 0 && self.budget_sessions == 0 {
            return;
        }
        loop {
            let over_points = self.budget_points > 0 && self.buffered > self.budget_points;
            let over_sessions =
                self.budget_sessions > 0 && self.sessions.len() > self.budget_sessions;
            if !(over_points || over_sessions) {
                return;
            }
            // Every live session has a last fix and is idle-indexed, so
            // the loop always makes progress while anything is over.
            let Some(&(_, vehicle)) = self.idle.iter().next() else {
                return;
            };
            self.close_session(vehicle);
            self.stats.sessions_evicted += 1;
            if log_cap > 0 {
                if eviction_log.len() == log_cap {
                    eviction_log.pop_front();
                }
                eviction_log.push_back(vehicle);
            }
        }
    }

    /// Removes `vehicle`'s session, moving any buffered samples to the
    /// pending queue. Returns true when a session existed.
    fn close_session(&mut self, vehicle: u64) -> bool {
        let Some(mut sess) = self.sessions.remove(&vehicle) else {
            return false;
        };
        if let Some(last) = sess.last {
            self.idle.remove(&(time_key(last.t), vehicle));
        }
        let samples = sess.take_segment();
        self.buffered -= samples.len();
        self.cut_segment(vehicle, samples);
        true
    }

    fn apply_finalize(&mut self, vehicle: u64) -> bool {
        let closed = self.close_session(vehicle);
        if closed {
            self.stats.segments_explicit += 1;
        }
        closed
    }

    fn apply_finalize_all(&mut self) {
        // Deterministic order: first buffered arrival, vehicle id as the
        // tie-break (covers empty buffers) — identical live and on replay.
        let mut order: Vec<(u64, u64)> = self
            .sessions
            .values()
            .map(|s| (s.arrivals.first().copied().unwrap_or(u64::MAX), s.vehicle))
            .collect();
        order.sort_unstable();
        for (_, vehicle) in order {
            self.apply_finalize(vehicle);
        }
    }

    /// Re-establishes the sorted-by-key invariant after a flush
    /// appended new pieces.
    fn resort_finished(&mut self) {
        if self.keys.windows(2).all(|w| w[0] <= w[1]) {
            return;
        }
        let keys = std::mem::take(&mut self.keys);
        let finished = std::mem::take(&mut self.finished);
        let mut both: Vec<(TrajKey, CompressedTrajectory)> =
            keys.into_iter().zip(finished).collect();
        both.sort_unstable_by_key(|e| e.0);
        self.keys.reserve(both.len());
        self.finished.reserve(both.len());
        for (k, ct) in both {
            self.keys.push(k);
            self.finished.push(ct);
        }
    }

    /// The rebuilt journal for the next generation: clock, resumes
    /// (sessions whose state is only the last fix), then buffered
    /// points in arrival order.
    fn checkpoint_records(&self, clock: f64) -> Vec<WalRecord> {
        let mut records = Vec::new();
        if clock.is_finite() {
            records.push(WalRecord::Clock { t: clock });
        }
        let mut resumes: Vec<&Session> = self
            .sessions
            .values()
            .filter(|s| s.samples.is_empty() && s.last.is_some())
            .collect();
        resumes.sort_unstable_by_key(|s| s.vehicle);
        for sess in resumes {
            let last = sess.last.expect("filtered on last.is_some");
            records.push(WalRecord::Resume {
                vehicle: sess.vehicle,
                x: last.point.x,
                y: last.point.y,
                t: last.t,
            });
        }
        let mut points: Vec<(u64, u64, GpsSample)> = Vec::new();
        for sess in self.sessions.values() {
            for (&arrival, &sample) in sess.arrivals.iter().zip(&sess.samples) {
                points.push((arrival, sess.vehicle, sample));
            }
        }
        points.sort_unstable_by_key(|&(arrival, vehicle, _)| (arrival, vehicle));
        for (_, vehicle, sample) in points {
            records.push(WalRecord::Point {
                vehicle,
                x: sample.point.x,
                y: sample.point.y,
                t: sample.t,
            });
        }
        records
    }

    /// Accepted points not yet in the corpus slice.
    fn in_flight_points(&self) -> usize {
        self.sessions
            .values()
            .map(|s| s.samples.len())
            .sum::<usize>()
            + self.pending.iter().map(|p| p.samples.len()).sum::<usize>()
    }
}

/// One shard's recovered state plus the journal-local replay context
/// the facade folds into its globals.
struct ShardRecovery {
    shard: Shard,
    clock: f64,
    next_arrival: u64,
    evictions: VecDeque<u64>,
    replayed_points: u64,
    replayed_finalizes: u64,
    torn_bytes: u64,
    fresh: bool,
    corpus_trajectories: usize,
}

/// One shard's corpus slice: trajectories, canonical merge keys, and
/// per-vehicle segment counters.
type ShardCorpus = (Vec<TrajKey>, Vec<CompressedTrajectory>, HashMap<u64, u64>);

/// Loads one shard's corpus slice. A pre-key corpus (no `ingest`
/// section) gets synthetic rank-0 keys pinning its original order.
fn load_shard_corpus(path: &Path) -> Result<ShardCorpus> {
    if !path.exists() {
        return Ok((Vec::new(), Vec::new(), HashMap::new()));
    }
    // Mapped open: recovery walks the block directory without pulling
    // the whole checkpoint into memory first; each block is faulted in
    // (and CRC-checked) once as `decode_all` visits it, and the answers
    // are bit-identical to an owned open.
    let store = TrajectoryStore::open_mapped(path)?;
    let finished = store.decode_all()?;
    match store.extra_section(INGEST_SECTION)? {
        Some(bytes) => {
            let (keys, next_seg) = decode_ingest_section(bytes, finished.len())?;
            Ok((keys, finished, next_seg))
        }
        None => {
            let keys = (0..finished.len())
                .map(|i| TrajKey {
                    rank: 0,
                    vehicle: i as u64,
                    seg: 0,
                    piece: 0,
                })
                .collect();
            Ok((keys, finished, HashMap::new()))
        }
    }
}

/// Recovers shard `k` of a committed generation: corpus slice first,
/// then a full journal replay through the live ingest path with a
/// journal-local clock and arrival counter.
fn recover_shard(
    dir: &Path,
    config: &IngestConfig,
    io: Arc<dyn IoBackend>,
    generation: u64,
    legacy: bool,
    k: usize,
) -> Result<ShardRecovery> {
    let corpus_name = if legacy {
        manifest::corpus_file_name(generation)
    } else {
        manifest::corpus_shard_file_name(generation, k as u32)
    };
    let (keys, finished, next_seg) = load_shard_corpus(&dir.join(corpus_name))?;
    let corpus_trajectories = finished.len();
    let wal_name = if legacy {
        manifest::wal_file_name(generation)
    } else {
        manifest::wal_shard_file_name(generation, k as u32)
    };
    let (wal, replay) = Wal::open_with(&dir.join(wal_name), io)?;
    let mut shard = Shard::new(wal, config, keys, finished, next_seg);
    let mut clock = f64::NEG_INFINITY;
    let mut next_arrival = 0u64;
    let mut evictions = VecDeque::new();
    let mut replayed_points = 0u64;
    let mut replayed_finalizes = 0u64;
    for rec in &replay.records {
        match *rec {
            WalRecord::Point { vehicle, x, y, t } => {
                replayed_points += 1;
                let sample = GpsSample {
                    point: Point::new(x, y),
                    t,
                };
                // Catch the shard up to the clock this frame was
                // appended under (live ingest pre-sweeps with the
                // global clock, which the preceding `Clock` frames
                // reproduce here), then re-apply. Only accepted fixes
                // were journaled, and validation depends only on
                // journaled state, so the replayed verdict is Accept
                // again by construction.
                shard.sweep_idle(config, clock);
                debug_assert_eq!(
                    shard.vet(&config.policy, vehicle, &sample),
                    Disposition::Accept,
                    "journaled fix must replay as accepted"
                );
                let arrival = next_arrival;
                next_arrival += 1;
                shard.apply_accept(config, vehicle, sample, arrival, &mut clock, &mut evictions);
            }
            WalRecord::Finalize { vehicle } => {
                replayed_finalizes += 1;
                shard.sweep_idle(config, clock);
                shard.apply_finalize(vehicle);
            }
            WalRecord::FinalizeAll => {
                replayed_finalizes += 1;
                shard.sweep_idle(config, clock);
                shard.apply_finalize_all();
            }
            WalRecord::Resume { vehicle, x, y, t } => {
                let mut sess = Session::new(vehicle);
                sess.last = Some(GpsSample {
                    point: Point::new(x, y),
                    t,
                });
                shard.idle.insert((time_key(t), vehicle));
                shard.sessions.insert(vehicle, sess);
            }
            WalRecord::Clock { t } => {
                if t > clock {
                    clock = t;
                }
            }
        }
    }
    // Everything replayed was read back from the device, so the whole
    // journal is the durability watermark; the group-commit
    // accumulators start empty, and the journal-local clock is exactly
    // what the journal encodes.
    shard.durable_offset = shard.wal.offset();
    shard.unsynced_bytes = 0;
    shard.unsynced_frames = 0;
    shard.last_sync_time = f64::NEG_INFINITY;
    shard.journaled_clock = clock;
    Ok(ShardRecovery {
        clock,
        next_arrival,
        evictions,
        replayed_points,
        replayed_finalizes,
        torn_bytes: replay.torn_bytes,
        fresh: replay.fresh,
        corpus_trajectories,
        shard,
    })
}

/// Multi-vehicle streaming ingest over one directory, sharded into
/// independent failure domains. See the module docs for the
/// ack/durability, degraded-mode, recovery, and checkpoint contracts.
pub struct IngestEngine {
    dir: PathBuf,
    config: IngestConfig,
    matcher: Arc<MapMatcher>,
    press: Press,
    /// The storage backend every durable write goes through (real
    /// filesystem in production, fault injector in tests).
    io: Arc<dyn IoBackend>,
    /// Committed checkpoint generation — names the live corpus/journal
    /// shard set (see [`crate::manifest`]).
    generation: u64,
    /// True while the directory still has the pre-shard (v1 manifest,
    /// un-suffixed names) layout; the next checkpoint migrates it.
    legacy_layout: bool,
    shards: Vec<Shard>,
    /// Largest timestamp ever accepted on any shard — the observed
    /// stream clock that drives idle sweeps (never wall clock: replay
    /// must be identical).
    max_time: f64,
    /// Global arrival counter (each accepted fix gets a unique,
    /// stream-ordered sequence number; shard journals compact these to
    /// local order on recovery, which preserves every per-shard
    /// relative order).
    arrival_seq: u64,
    /// Ring of the most recently evicted vehicles (capacity
    /// `config.eviction_log_cap`), oldest first; rebuilt shard-major on
    /// recovery.
    eviction_log: VecDeque<u64>,
    /// Ring of the most recent quarantined fixes (capacity
    /// `config.quarantine_log_cap`), oldest first.
    quarantine: VecDeque<QuarantineRecord>,
    recovery: RecoveryReport,
    hot_persist: Option<HotTreePersist>,
}

impl IngestEngine {
    /// Opens (or creates) the ingest directory, recovering any previous
    /// state: each shard's corpus slice first, then a full journal
    /// replay through the live ingest path — all shards in parallel.
    pub fn open(
        dir: &Path,
        matcher: Arc<MapMatcher>,
        press: Press,
        config: IngestConfig,
    ) -> Result<IngestEngine> {
        Self::open_with_io(dir, matcher, press, config, store_io::real_io())
    }

    /// [`IngestEngine::open`] through an explicit
    /// [`press_store::IoBackend`]: every durable write — journal
    /// appends and fsyncs, checkpoint artifacts, manifest commits —
    /// goes through `io`, so disk faults are injectable. Recovery
    /// reads stay direct (read-path corruption already has its own
    /// typed taxonomy).
    pub fn open_with_io(
        dir: &Path,
        matcher: Arc<MapMatcher>,
        press: Press,
        config: IngestConfig,
        io: Arc<dyn IoBackend>,
    ) -> Result<IngestEngine> {
        if config.block_size == 0 {
            return Err(ServeError::Config("block_size must be at least 1".into()));
        }
        if config.shards == 0 {
            return Err(ServeError::Config("shards must be at least 1".into()));
        }
        if config.idle_timeout.is_nan() {
            return Err(ServeError::Config("idle_timeout must not be NaN".into()));
        }
        config.durability.validate().map_err(ServeError::Config)?;
        std::fs::create_dir_all(dir)?;
        let (generation, legacy_layout) =
            match manifest::read(dir).map_err(|e| ServeError::Manifest(e.to_string()))? {
                Some(m) => {
                    match m.shards {
                        // A pre-shard directory: one implicit shard,
                        // un-suffixed artifact names. Only a 1-shard
                        // config may open it (the next checkpoint
                        // migrates the naming); resharding is refused.
                        None if config.shards != 1 => {
                            return Err(ServeError::Config(format!(
                                "directory has a legacy single-shard layout; open it with \
                                 shards = 1 (got {}) — the next checkpoint migrates it",
                                config.shards
                            )));
                        }
                        Some(s) if s as usize != config.shards => {
                            return Err(ServeError::Config(format!(
                                "directory is committed with {s} ingest shards but the \
                                 config asks for {}; resharding is not supported",
                                config.shards
                            )));
                        }
                        _ => {}
                    }
                    // Uncommitted leftovers of a checkpoint that crashed
                    // before its manifest rename (or a superseded generation
                    // whose cleanup was interrupted) are garbage.
                    manifest::gc(dir, m.generation)?;
                    (m.generation, m.shards.is_none())
                }
                None => {
                    // Artifacts without a manifest mean the manifest was
                    // deleted or the directory predates this format: refuse
                    // rather than silently restarting from nothing.
                    if manifest::has_artifacts(dir)? {
                        return Err(ServeError::Manifest(
                            "ingest artifacts present but MANIFEST is missing".into(),
                        ));
                    }
                    manifest::commit_with(io.as_ref(), dir, 0, config.shards as u32)
                        .map_err(|e| ServeError::Manifest(e.to_string()))?;
                    (0, false)
                }
            };
        // All shard journals replay in parallel on the shared
        // work-steal loop (the eager variant: a handful of shards is
        // exactly the few-heavy-items shape the small-input shortcut
        // would serialize).
        let shard_ids: Vec<usize> = (0..config.shards).collect();
        let recovered: Vec<Result<ShardRecovery>> =
            work_steal_map_eager(&shard_ids, config.threads, |_, &k| {
                recover_shard(dir, &config, io.clone(), generation, legacy_layout, k)
            });
        let mut shards = Vec::with_capacity(config.shards);
        let mut max_time = f64::NEG_INFINITY;
        let mut arrival_seq = 0u64;
        let mut eviction_log = VecDeque::new();
        let mut report = RecoveryReport {
            wal_was_fresh: true,
            ..RecoveryReport::default()
        };
        for r in recovered {
            let r = r?;
            if r.clock > max_time {
                max_time = r.clock;
            }
            arrival_seq = arrival_seq.max(r.next_arrival);
            report.corpus_trajectories += r.corpus_trajectories;
            report.replayed_points += r.replayed_points;
            report.replayed_finalizes += r.replayed_finalizes;
            report.torn_bytes += r.torn_bytes;
            report.wal_was_fresh &= r.fresh;
            report.sessions_rebuilt += r.shard.sessions.len();
            for vehicle in r.evictions {
                if config.eviction_log_cap > 0 {
                    if eviction_log.len() == config.eviction_log_cap {
                        eviction_log.pop_front();
                    }
                    eviction_log.push_back(vehicle);
                }
            }
            shards.push(r.shard);
        }
        report.points_in_flight = shards.iter().map(Shard::in_flight_points).sum();
        Ok(IngestEngine {
            dir: dir.to_path_buf(),
            config,
            matcher,
            press,
            io,
            generation,
            legacy_layout,
            shards,
            max_time,
            arrival_seq,
            eviction_log,
            quarantine: VecDeque::new(),
            recovery: report,
            hot_persist: None,
        })
    }

    /// The shard owning `vehicle` (SplitMix64 of the id, mod the shard
    /// count) — stable for the directory's lifetime.
    pub fn shard_of(&self, vehicle: u64) -> usize {
        (splitmix64(vehicle) % self.config.shards as u64) as usize
    }

    /// Wraps a shard-scoped failure for multi-shard engines;
    /// single-shard engines keep the historical un-wrapped errors.
    fn degrade(shards: usize, shard: usize, e: ServeError) -> ServeError {
        if shards > 1 {
            ServeError::ShardDegraded {
                shard,
                cause: Box::new(e),
            }
        } else {
            e
        }
    }

    /// Catches shard `k` up to the global stream clock before any
    /// decision about its sessions. On a single-shard engine the clock
    /// cannot have moved since the shard's own last sweep, so this is a
    /// no-op there — which is exactly why sharded segmentation matches
    /// the single-writer engine's.
    fn presweep(&mut self, k: usize) {
        let clock = self.max_time;
        if self.shards[k].sweep_idle(&self.config, clock) > 0
            && clock > self.shards[k].journaled_clock
        {
            // The cut happened at a clock the shard's journal doesn't
            // encode; the next append must journal it first. Sticky
            // until then: a quarantined push between here and the next
            // accepted one writes no record of its own.
            self.shards[k].needs_clock = true;
        }
    }

    fn presweep_all(&mut self) {
        for k in 0..self.shards.len() {
            self.presweep(k);
        }
    }

    /// Appends one record to shard `k`'s journal, first journaling a
    /// `Clock` frame when a pre-append sweep cut sessions at a global
    /// clock the journal doesn't encode — per-shard replay then
    /// reproduces the same cuts, at the same point, without reading any
    /// other shard's journal. Sweeps that cut nothing need no frame
    /// (expiry is monotone in the clock, so a lagging replay clock
    /// sweeps the same empty set), which keeps the frame overhead
    /// proportional to actual session churn, not to the push rate.
    fn shard_append(&mut self, k: usize, rec: &WalRecord) -> Result<u64> {
        if self.shards[k].needs_clock {
            if self.max_time.is_finite() && self.max_time > self.shards[k].journaled_clock {
                let t = self.max_time;
                self.append_retrying(k, &WalRecord::Clock { t })?;
                self.shards[k].journaled_clock = t;
            }
            self.shards[k].needs_clock = false;
        }
        let offset = self.append_retrying(k, rec)?;
        if let WalRecord::Point { t, .. } = *rec {
            let shard = &mut self.shards[k];
            if t > shard.journaled_clock {
                shard.journaled_clock = t;
            }
        }
        Ok(offset)
    }

    /// Appends one record to shard `k` with the policy's retry/backoff,
    /// classifying failures: out-of-space is persistent (no retry,
    /// typed [`ServeError::StorageFull`]); other I/O errors are
    /// transient and retried with doubling backoff before surfacing as
    /// [`ServeError::Backpressure`]. On success the shard's
    /// group-commit accumulators advance. Rejections are counted on the
    /// failing shard only.
    fn append_retrying(&mut self, k: usize, rec: &WalRecord) -> Result<u64> {
        let policy = self.config.durability;
        let shard = &mut self.shards[k];
        let mut attempt = 0u32;
        loop {
            let before = shard.wal.offset();
            match shard.wal.append(rec) {
                Ok(offset) => {
                    shard.unsynced_bytes += offset - before;
                    shard.unsynced_frames += 1;
                    return Ok(offset);
                }
                Err(WalError::StorageFull(msg)) => {
                    shard.stats.storage_full_rejections += 1;
                    return Err(ServeError::StorageFull(msg));
                }
                Err(WalError::Io(detail)) => {
                    if attempt >= policy.max_retries {
                        shard.stats.backpressure_rejections += 1;
                        return Err(ServeError::Backpressure {
                            detail,
                            retries: attempt,
                        });
                    }
                    attempt += 1;
                    shard.stats.io_retries += 1;
                    Self::backoff(&policy, attempt);
                }
                Err(other) => return Err(other.into()),
            }
        }
    }

    /// Sleeps the policy's doubling backoff before retry `attempt`.
    /// Wall-clock sleep is safe here: it delays the retry but decides
    /// nothing — all decisions key off journaled stream state.
    fn backoff(policy: &DurabilityPolicy, attempt: u32) {
        let ms = policy.backoff_ms(attempt);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    /// Ingests one fix, routed to its owning shard. Accepted fixes are
    /// journaled *before* they are buffered; the configured
    /// [`DurabilityPolicy`] decides when that shard's journal is
    /// fsynced (group commit), and the ack reports honestly:
    /// [`Ack::Accepted`] only when the fix's frame is already covered
    /// by a completed sync, [`Ack::Journaled`] otherwise.
    ///
    /// An `Err` means the fix was **not** ingested and engine state is
    /// unchanged: [`ServeError::StorageFull`] for out-of-space
    /// (persistent — re-push after freeing space),
    /// [`ServeError::Backpressure`] when a transient failure survived
    /// the retry budget — both wrapped in
    /// [`ServeError::ShardDegraded`] on a multi-shard engine, where
    /// they degrade **only the owning shard**: pushes routed elsewhere
    /// keep acking and the engine keeps serving queries either way.
    pub fn push(&mut self, vehicle: u64, sample: GpsSample) -> Result<Ack> {
        let k = self.shard_of(vehicle);
        self.presweep(k);
        match self.shards[k].vet(&self.config.policy, vehicle, &sample) {
            Disposition::Accept => {
                let offset = self
                    .shard_append(
                        k,
                        &WalRecord::Point {
                            vehicle,
                            x: sample.point.x,
                            y: sample.point.y,
                            t: sample.t,
                        },
                    )
                    .map_err(|e| Self::degrade(self.config.shards, k, e))?;
                let arrival = self.arrival_seq;
                self.arrival_seq += 1;
                let mut clock = self.max_time;
                self.shards[k].apply_accept(
                    &self.config,
                    vehicle,
                    sample,
                    arrival,
                    &mut clock,
                    &mut self.eviction_log,
                );
                self.max_time = clock;
                self.tick_hot_persist();
                // A failed group sync is absorbed here (counted in the
                // shard's `sync_failures`): the frame IS journaled, so
                // the honest answer is Journaled, not an error.
                self.maybe_group_sync(k);
                if offset <= self.shards[k].durable_offset {
                    Ok(Ack::Accepted { offset })
                } else {
                    Ok(Ack::Journaled { offset })
                }
            }
            Disposition::Coalesce => {
                let shard = &mut self.shards[k];
                if let Some(sess) = shard.sessions.get_mut(&vehicle) {
                    sess.repaired += 1;
                }
                shard.stats.points_repaired += 1;
                Ok(Ack::Repaired)
            }
            Disposition::Quarantine(reason) => {
                let shard = &mut self.shards[k];
                if let Some(sess) = shard.sessions.get_mut(&vehicle) {
                    sess.quarantined[reason.index()] += 1;
                }
                shard.stats.points_quarantined[reason.index()] += 1;
                if self.config.quarantine_log_cap > 0 {
                    if self.quarantine.len() == self.config.quarantine_log_cap {
                        self.quarantine.pop_front();
                    }
                    self.quarantine.push_back(QuarantineRecord {
                        vehicle,
                        sample,
                        reason,
                    });
                }
                Ok(Ack::Quarantined(reason))
            }
        }
    }

    /// Issues shard `k`'s group-commit fsync if a policy threshold has
    /// tripped. Failures are absorbed into the shard's `sync_failures`
    /// — the unsynced frames stay journaled and the next trigger
    /// retries the sync.
    fn maybe_group_sync(&mut self, k: usize) {
        let policy = self.config.durability;
        let max_time = self.max_time;
        // Scale the timed trigger by the shard count so the *engine's*
        // fsync rate — not each shard's — is what the policy names: N
        // shards each syncing every N·interval of stream time issue the
        // same number of fsyncs as one shard syncing every interval.
        // The per-shard journaled-but-not-durable window widens to
        // N·sync_interval accordingly; at one shard nothing changes.
        let interval = policy.sync_interval * self.config.shards as f64;
        let tripped = {
            let shard = &mut self.shards[k];
            if shard.unsynced_frames == 0 {
                return;
            }
            if interval > 0.0 && shard.last_sync_time == f64::NEG_INFINITY && max_time.is_finite() {
                // Arm the interval trigger on the first observed stream
                // time; the first timed sync lands one interval later.
                shard.last_sync_time = max_time;
            }
            let by_bytes = policy.sync_bytes > 0 && shard.unsynced_bytes >= policy.sync_bytes;
            let by_time = interval > 0.0
                && shard.last_sync_time.is_finite()
                && max_time - shard.last_sync_time >= interval;
            by_bytes || by_time
        };
        if tripped && self.sync_shard_retrying(k).is_err() {
            self.shards[k].stats.sync_failures += 1;
        }
    }

    /// Fsyncs shard `k`'s journal with the policy's retry/backoff; on
    /// success advances that shard's durability watermark and
    /// group-commit counters.
    fn sync_shard_retrying(&mut self, k: usize) -> Result<()> {
        let policy = self.config.durability;
        let max_time = self.max_time;
        let shard = &mut self.shards[k];
        let mut attempt = 0u32;
        loop {
            match shard.wal.sync() {
                Ok(()) => {
                    shard.stats.sync_calls += 1;
                    shard.stats.synced_frames += shard.unsynced_frames;
                    shard.stats.max_sync_batch =
                        shard.stats.max_sync_batch.max(shard.unsynced_frames);
                    shard.unsynced_bytes = 0;
                    shard.unsynced_frames = 0;
                    shard.durable_offset = shard.wal.offset();
                    if max_time.is_finite() {
                        shard.last_sync_time = max_time;
                    }
                    return Ok(());
                }
                Err(WalError::StorageFull(msg)) => {
                    return Err(ServeError::StorageFull(msg));
                }
                Err(WalError::Io(detail)) => {
                    if attempt >= policy.max_retries {
                        return Err(ServeError::Backpressure {
                            detail,
                            retries: attempt,
                        });
                    }
                    attempt += 1;
                    shard.stats.io_retries += 1;
                    Self::backoff(&policy, attempt);
                }
                Err(other) => return Err(other.into()),
            }
        }
    }

    /// Stream-time timer tick for the background hot-tree persistence
    /// (see [`IngestEngine::enable_hot_tree_persist`]). Best-effort:
    /// a failed write only skips this tick — persistence is a warm-start
    /// optimization, never part of the durability contract — so the
    /// shared accept path stays infallible. Saves are counted in
    /// [`press_network::CacheStats::hot_saves`].
    fn tick_hot_persist(&mut self) {
        let Some(hp) = &mut self.hot_persist else {
            return;
        };
        if !self.max_time.is_finite() {
            return;
        }
        if hp.last_save == f64::NEG_INFINITY {
            // Arm on the first observed stream time; the first save lands
            // one full interval later, once there are trees worth saving.
            hp.last_save = self.max_time;
            return;
        }
        if self.max_time - hp.last_save >= hp.interval {
            hp.last_save = self.max_time;
            let _ = hp.cache.save_hot_trees(&hp.path);
        }
    }

    /// Enables background re-persistence of `cache`'s hot-tree set to
    /// `path` every `interval_secs` seconds of **stream time** (the
    /// observed `max_time` clock idle sweeps use; wall clock would make
    /// replay nondeterministic). Each save rewrites the artifact with the
    /// currently-resident trees and increments
    /// [`press_network::CacheStats::hot_saves`]. Pass the cache the
    /// engine's SP provider wraps, so the persisted set tracks the trees
    /// serving actually heats up.
    pub fn enable_hot_tree_persist(
        &mut self,
        cache: Arc<LazySpCache>,
        path: PathBuf,
        interval_secs: f64,
    ) -> Result<()> {
        if !interval_secs.is_finite() || interval_secs <= 0.0 {
            return Err(ServeError::Config(
                "hot-tree persist interval must be positive".into(),
            ));
        }
        self.hot_persist = Some(HotTreePersist {
            cache,
            path,
            interval: interval_secs,
            last_save: f64::NEG_INFINITY,
        });
        Ok(())
    }

    /// Explicitly ends `vehicle`'s trajectory (journaled in its owning
    /// shard, so recovery reproduces the same segmentation). Returns
    /// true when a live session was closed.
    pub fn finalize(&mut self, vehicle: u64) -> Result<bool> {
        let k = self.shard_of(vehicle);
        self.presweep(k);
        if !self.shards[k].sessions.contains_key(&vehicle) {
            return Ok(false);
        }
        self.shard_append(k, &WalRecord::Finalize { vehicle })
            .map_err(|e| Self::degrade(self.config.shards, k, e))?;
        Ok(self.shards[k].apply_finalize(vehicle))
    }

    /// Explicitly ends every live trajectory (journaled per shard, in
    /// shard order). On a multi-shard engine a failing shard surfaces
    /// as [`ServeError::ShardDegraded`] with shards before it already
    /// finalized and shards after it untouched (their sessions stay
    /// live; call again once the shard heals).
    pub fn finalize_all(&mut self) -> Result<()> {
        self.presweep_all();
        for k in 0..self.shards.len() {
            if self.shards[k].sessions.is_empty() {
                continue;
            }
            self.shard_append(k, &WalRecord::FinalizeAll)
                .map_err(|e| Self::degrade(self.config.shards, k, e))?;
            self.shards[k].apply_finalize_all();
        }
        Ok(())
    }

    /// Matches and compresses all pending segments from every shard (in
    /// parallel across `config.threads`, order-preserving), appending
    /// the results to each owning shard's corpus slice under their
    /// canonical merge keys. Returns the number of pieces compressed.
    ///
    /// The journals are deliberately *not* trimmed here: flushed
    /// segments stay replayable until [`IngestEngine::checkpoint`]
    /// publishes them.
    pub fn flush(&mut self) -> Result<usize> {
        self.presweep_all();
        let mut tagged: Vec<(usize, PendingSegment)> = Vec::new();
        for (k, shard) in self.shards.iter_mut().enumerate() {
            tagged.extend(shard.pending.drain(..).map(|seg| (k, seg)));
        }
        if tagged.is_empty() {
            return Ok(0);
        }
        // Canonical work order: the per-segment outcomes are
        // deterministic, so this only pins scheduling; the corpus order
        // comes from the keys.
        tagged.sort_by_key(|(_, seg)| (seg.vehicle, seg.seg));
        let matcher = Arc::clone(&self.matcher);
        let model = self.press.model();
        let press_config = self.press.config();
        let max_work = self.config.max_lattice_work;
        let max_splits = self.config.max_salvage_splits;
        let outcomes: Vec<SegmentOutcome> =
            work_steal_map(&tagged, self.config.threads, |_, item| {
                let seg = &item.1;
                let report = matcher.match_trajectory_salvaging(&seg.samples, max_work, max_splits);
                let mut out = SegmentOutcome {
                    compressed: Vec::with_capacity(report.pieces.len()),
                    splits: report.splits as u64,
                    dropped: 0,
                    shed: 0,
                };
                for err in &report.dropped {
                    out.dropped += 1;
                    if matches!(err, MatcherError::BudgetExceeded { .. }) {
                        out.shed += 1;
                    }
                }
                for piece in report.pieces {
                    let path_samples: Vec<PathSample> = piece
                        .samples
                        .iter()
                        .map(|m| PathSample {
                            edge_idx: m.edge_idx,
                            frac: m.frac,
                            t: m.t,
                        })
                        .collect();
                    let compressed = reformat(matcher.network(), piece.edges, &path_samples)
                        .and_then(|traj| {
                            // Streaming form of `Press::compress`: online SP
                            // reduction + `encode_sp_form`, online BTC. The
                            // chunking proptests pin these bit-identical to
                            // the batch pipeline.
                            let mut spc = OnlineSpCompressor::new(Arc::clone(model.sp()));
                            let mut sp_form = Vec::with_capacity(traj.path.edges.len());
                            for &e in &traj.path.edges {
                                sp_form.extend(spc.push(e));
                            }
                            sp_form.extend(spc.finish());
                            let spatial =
                                model.encode_sp_form(&sp_form, press_config.decomposer)?;
                            let mut btc = OnlineBtc::new(press_config.bounds);
                            let mut kept = Vec::with_capacity(traj.temporal.len());
                            for &p in &traj.temporal.points {
                                kept.extend(btc.push(p));
                            }
                            kept.extend(btc.finish());
                            Ok(CompressedTrajectory {
                                spatial,
                                temporal: TemporalSequence::new_unchecked(kept),
                            })
                        });
                    match compressed {
                        Ok(ct) => out.compressed.push(ct),
                        Err(_) => out.dropped += 1,
                    }
                }
                out
            });
        let mut pieces = 0usize;
        for ((k, seg), out) in tagged.into_iter().zip(outcomes) {
            let shard = &mut self.shards[k];
            pieces += out.compressed.len();
            shard.stats.pieces_compressed += out.compressed.len() as u64;
            shard.stats.salvage_splits += out.splits;
            shard.stats.pieces_dropped += out.dropped;
            shard.stats.pieces_shed += out.shed;
            for (piece, ct) in out.compressed.into_iter().enumerate() {
                shard.keys.push(TrajKey {
                    rank: 1,
                    vehicle: seg.vehicle,
                    seg: seg.seg,
                    piece: piece as u32,
                });
                shard.finished.push(ct);
            }
        }
        for shard in &mut self.shards {
            shard.resort_finished();
        }
        Ok(pieces)
    }

    /// Flushes, then commits the published corpus shard files and the
    /// per-shard journals — each shrunk down to just its in-flight
    /// state — as **one atomic set**: everything is written under the
    /// next generation number and flipped live by a single manifest
    /// rename (see [`crate::manifest`]), so a crash at any byte of the
    /// checkpoint recovers a consistent generation. **Incremental**: a
    /// shard that cut no segment since the last checkpoint hard-links
    /// its previous corpus file instead of rewriting it, so cost scales
    /// with dirty shards. After a checkpoint, recovery cost is
    /// proportional to the in-flight points, not the history. Returns
    /// the number of trajectories in the corpus.
    pub fn checkpoint(&mut self) -> Result<usize> {
        self.flush()?;
        let next = self.generation + 1;
        let query = QueryEngine::new(self.press.model());
        for k in 0..self.shards.len() {
            let next_path = self
                .dir
                .join(manifest::corpus_shard_file_name(next, k as u32));
            let prev_path = self.shard_corpus_path_at(self.generation, k);
            let shard = &self.shards[k];
            if shard.dirty || self.legacy_layout || !prev_path.exists() {
                let extra = vec![(
                    INGEST_SECTION.to_string(),
                    encode_ingest_section(&shard.keys, &shard.next_seg),
                )];
                let bytes = TrajectoryStore::to_store_bytes_with_extra(
                    &query,
                    &shard.finished,
                    self.config.block_size,
                    extra,
                )?;
                // The generation-stamped name is invisible to recovery
                // until the manifest commit; the atomic write
                // additionally keeps a faulted checkpoint from leaving a
                // half-written artifact under a name a *later*
                // checkpoint could collide with.
                store_io::atomic_write_file(self.io.as_ref(), &next_path, &bytes)
                    .map_err(|e| Self::degrade(self.config.shards, k, e.into()))?;
            } else {
                // Clean shard: the previous generation's file *is* the
                // next one — link it under the new name (a leftover from
                // an uncommitted checkpoint may occupy it). Generation GC
                // only ever removes names, so the shared inode lives
                // until the last generation referencing it is collected.
                let _ = self.io.remove_file(&next_path);
                self.io
                    .hard_link(&prev_path, &next_path)
                    .map_err(|e| Self::degrade(self.config.shards, k, e.into()))?;
            }
        }
        let max_time = self.max_time;
        let mut new_wals = Vec::with_capacity(self.shards.len());
        for k in 0..self.shards.len() {
            let records = self.shards[k].checkpoint_records(max_time);
            let wal = Wal::create_with(
                &self.dir.join(manifest::wal_shard_file_name(next, k as u32)),
                &records,
                self.io.clone(),
            )
            .map_err(|e| Self::degrade(self.config.shards, k, e.into()))?;
            new_wals.push(wal);
        }
        // The commit point: one atomic rename flips recovery from the
        // old shard set to the new one. A typed failure anywhere up to
        // here leaves the engine on its old generation, old journals,
        // fully consistent — the uncommitted new-generation files are
        // GC'd later.
        manifest::commit_with(self.io.as_ref(), &self.dir, next, self.config.shards as u32)
            .map_err(|e| ServeError::Manifest(e.to_string()))?;
        self.generation = next;
        self.legacy_layout = false;
        for (k, wal) in new_wals.into_iter().enumerate() {
            let shard = &mut self.shards[k];
            shard.wal = wal;
            // `Wal::create_with` synced the new journal, so everything
            // in it is durable; the group-commit accumulators restart
            // empty.
            shard.durable_offset = shard.wal.offset();
            shard.unsynced_bytes = 0;
            shard.unsynced_frames = 0;
            if max_time.is_finite() {
                shard.last_sync_time = max_time;
                shard.journaled_clock = max_time;
            } else {
                shard.journaled_clock = f64::NEG_INFINITY;
            }
            shard.needs_clock = false;
            shard.dirty = false;
        }
        // The superseded generation is dead weight now. Best-effort
        // only: a cleanup fault must not fail a *committed* checkpoint
        // (and must not swap the journal handles back) — the next
        // open's GC finishes the job, and leftovers are inert meanwhile.
        let _ = manifest::gc(&self.dir, next);
        Ok(self.shards.iter().map(|s| s.finished.len()).sum())
    }

    /// Forces every shard's journal bytes to stable storage (fsync)
    /// with the policy's retry/backoff, advancing each shard's
    /// durability watermark on success: afterwards every previously
    /// `Journaled` ack is durable. A failing shard is recorded in its
    /// own `sync_failures` and reported (wrapped in
    /// [`ServeError::ShardDegraded`] on multi-shard engines) — but
    /// every *other* shard is still synced first; the frames stay
    /// journaled and a later sync can cover them.
    pub fn sync(&mut self) -> Result<()> {
        let mut first_err = None;
        for k in 0..self.shards.len() {
            if let Err(e) = self.sync_shard_retrying(k) {
                self.shards[k].stats.sync_failures += 1;
                if first_err.is_none() {
                    first_err = Some(Self::degrade(self.config.shards, k, e));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The merged corpus index: `(shard, index-within-shard)` pairs in
    /// global canonical key order (key, then shard as the tiebreak for
    /// inherited rank-0 keys).
    fn merged_order(&self) -> Vec<(usize, usize)> {
        let mut order: Vec<(TrajKey, usize, usize)> = Vec::new();
        for (k, shard) in self.shards.iter().enumerate() {
            order.extend(shard.keys.iter().enumerate().map(|(i, &key)| (key, k, i)));
        }
        order.sort_unstable_by_key(|&(key, k, _)| (key, k));
        order.into_iter().map(|(_, k, i)| (k, i)).collect()
    }

    /// The published-corpus bytes a checkpoint of the current state
    /// would serve, built from every shard's slice in canonical merge
    /// order — byte-identical for any shard count and any flush-worker
    /// count (the shard-matrix proptests pin this).
    pub fn merged_corpus_bytes(&self) -> Result<Vec<u8>> {
        let query = QueryEngine::new(self.press.model());
        let trajs: Vec<CompressedTrajectory> = self
            .merged_order()
            .into_iter()
            .map(|(k, i)| self.shards[k].finished[i].clone())
            .collect();
        Ok(TrajectoryStore::to_store_bytes(
            &query,
            &trajs,
            self.config.block_size,
        )?)
    }

    /// The ingest directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The committed checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of independent writer shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_corpus_path_at(&self, gen: u64, shard: usize) -> PathBuf {
        if self.legacy_layout && shard == 0 {
            self.dir.join(manifest::corpus_file_name(gen))
        } else {
            self.dir
                .join(manifest::corpus_shard_file_name(gen, shard as u32))
        }
    }

    /// Path of shard 0's published corpus file (current generation).
    /// With one shard this is the whole corpus; multi-shard readers
    /// should walk [`IngestEngine::shard_corpus_path`] over
    /// [`IngestEngine::num_shards`] or use
    /// [`IngestEngine::merged_corpus_bytes`].
    pub fn corpus_path(&self) -> PathBuf {
        self.shard_corpus_path(0)
    }

    /// Path of `shard`'s published corpus file (current generation).
    pub fn shard_corpus_path(&self, shard: usize) -> PathBuf {
        self.shard_corpus_path_at(self.generation, shard)
    }

    /// Path of shard 0's journal (current generation).
    pub fn wal_path(&self) -> PathBuf {
        self.shard_wal_path(0)
    }

    /// Path of `shard`'s journal (current generation).
    pub fn shard_wal_path(&self, shard: usize) -> PathBuf {
        self.shards[shard].wal.path().to_path_buf()
    }

    /// Shard 0's journal length — with one shard, the latest
    /// ingested-fix ack offset.
    pub fn wal_offset(&self) -> u64 {
        self.shard_wal_offset(0)
    }

    /// `shard`'s journal length.
    pub fn shard_wal_offset(&self, shard: usize) -> u64 {
        self.shards[shard].wal.offset()
    }

    /// Shard 0's durability watermark (see
    /// [`IngestEngine::shard_durable_offset`]).
    pub fn durable_offset(&self) -> u64 {
        self.shard_durable_offset(0)
    }

    /// `shard`'s durability watermark: every frame of its journal
    /// ending at or before this offset is covered by a completed
    /// fsync. An ack with `offset <= shard_durable_offset(shard)` has
    /// power-loss durability.
    pub fn shard_durable_offset(&self, shard: usize) -> u64 {
        self.shards[shard].durable_offset
    }

    /// Points currently buffered across live sessions on all shards —
    /// what the memory budget ([`IngestConfig::max_buffered_points`])
    /// bounds.
    pub fn buffered_points(&self) -> usize {
        self.shards.iter().map(|s| s.buffered).sum()
    }

    /// The bounded eviction log: the most recent
    /// [`IngestConfig::eviction_log_cap`] evicted vehicles, oldest
    /// first (rebuilt shard-major on recovery).
    pub fn eviction_log(&self) -> &VecDeque<u64> {
        &self.eviction_log
    }

    /// The engine configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The compression handle (model + parameters).
    pub fn press(&self) -> &Press {
        &self.press
    }

    /// Live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// Finalized segments awaiting [`IngestEngine::flush`], across all
    /// shards.
    pub fn pending_segments(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }

    /// The in-memory compressed corpus (checkpointed + flushed), in
    /// canonical merge order across all shards.
    pub fn finished(&self) -> Vec<CompressedTrajectory> {
        self.merged_order()
            .into_iter()
            .map(|(k, i)| self.shards[k].finished[i].clone())
            .collect()
    }

    /// Ingest counters, summed across all shards (see
    /// [`IngestEngine::shard_stats`] for one shard's view).
    pub fn stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for shard in &self.shards {
            total.accumulate(&shard.stats);
        }
        total
    }

    /// One shard's ingest counters. A degraded shard's rejections land
    /// here and never in a healthy shard's counters.
    pub fn shard_stats(&self, shard: usize) -> &IngestStats {
        &self.shards[shard].stats
    }

    /// The bounded quarantine log: the most recent
    /// [`IngestConfig::quarantine_log_cap`] quarantined fixes, oldest
    /// first.
    pub fn quarantine_log(&self) -> &VecDeque<QuarantineRecord> {
        &self.quarantine
    }

    /// What the last [`IngestEngine::open`] recovered, summed across
    /// shards.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }
}
