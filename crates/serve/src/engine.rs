//! The streaming ingest engine: sharded per-vehicle sessions feeding the
//! PRESS pipeline (match → reformat → HSC + BTC) behind a crash-safe WAL.
//!
//! # Ack and durability contract
//!
//! [`IngestEngine::push`] vets each fix ([`Session::vet`]), journals the
//! accepted ones, and only then buffers them. The configured
//! [`DurabilityPolicy`] group-commits the journal (byte / stream-time
//! thresholds), and acks never overstate what happened: a fix is
//! [`Ack::Accepted`] only when a completed fsync covers its frame, and
//! [`Ack::Journaled`] (written, not yet synced) otherwise — the
//! [`IngestEngine::durable_offset`] watermark says which journaled
//! offsets have become durable since. Rejected and coalesced fixes are
//! acked without journaling — replays reproduce the identical decisions
//! because validation only depends on journaled state.
//!
//! # Disk faults and degraded modes
//!
//! Every durable write goes through an injectable
//! [`press_store::IoBackend`] ([`IngestEngine::open_with_io`]).
//! Transient failures are retried with the policy's backoff; writes
//! that still cannot be made durable surface as typed
//! [`ServeError::Backpressure`] / [`ServeError::StorageFull`] errors
//! with the fix **not** ingested and engine state unchanged — the
//! engine keeps serving queries, never panics, never drops silently,
//! and ingest resumes when the device recovers.
//!
//! # Memory budget
//!
//! [`IngestConfig::max_buffered_points`] / [`IngestConfig::max_sessions`]
//! bound session memory: overflow evicts least-recently-active sessions
//! into the pending queue (their points are already WAL-backed). The
//! eviction trigger reads only journal-derived state — buffer occupancy
//! and the stream-time LRU index, never wall clock — so replay evicts
//! identically and eviction is invisible in the recovered corpus.
//!
//! # Recovery
//!
//! [`IngestEngine::open`] reads the `MANIFEST` to find the committed
//! generation, loads its checkpointed corpus (`corpus.<gen>.press`),
//! replays its journal (`ingest.<gen>.wal`) through the exact same
//! code path as live ingest (sessions, segment rollovers, idle
//! sweeps), and truncates any torn tail. Artifacts from any other
//! generation are uncommitted checkpoint leftovers and are
//! garbage-collected. The rebuilt engine is therefore in the same
//! state a clean run would reach after pushing exactly the acked
//! prefix — the recovery proptests assert the resulting corpora are
//! byte-identical.
//!
//! # Checkpoints
//!
//! [`IngestEngine::checkpoint`] flushes pending segments, then commits
//! the corpus and the shrunk journal **as one atomic pair**: both are
//! written under the next generation number — the journal holding just
//! the in-flight state (buffered points in original arrival order,
//! `Resume` frames for sessions whose buffers are empty but whose
//! last-accepted fix still gates validation, and a `Clock` frame
//! pinning the observed stream time so idle sweeps replay identically)
//! — and a single [`crate::manifest`] rename flips recovery to the new
//! pair. A crash at any byte of the checkpoint lands on a complete
//! generation: the old corpus with the full old journal, or the new
//! corpus with exactly its in-flight tail — never the new corpus with
//! the old journal, which would replay (and duplicate) trajectories
//! the corpus already contains.

use crate::durability::DurabilityPolicy;
use crate::manifest;
use crate::session::{Disposition, QuarantineReason, Session, SessionPolicy};
use crate::wal::{Wal, WalError, WalRecord};
use press_core::reformat::{reformat, PathSample};
use press_core::spatial::online::OnlineSpCompressor;
use press_core::store::TrajectoryStore;
use press_core::temporal::online::OnlineBtc;
use press_core::types::TemporalSequence;
use press_core::{parallel::work_steal_map, query::QueryEngine};
use press_core::{CompressedTrajectory, Press, PressError};
use press_matcher::{GpsSample, MapMatcher, MatcherError};
use press_network::{LazySpCache, Point};
use press_store::io::{self as store_io, IoBackend};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors surfaced by the ingest engine.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure outside the journal.
    Io(String),
    /// Journal failure (see [`WalError`]).
    Wal(WalError),
    /// Compression/query-layer failure.
    Press(PressError),
    /// Invalid engine configuration.
    Config(String),
    /// The checkpoint manifest is damaged or inconsistent with the
    /// directory contents.
    Manifest(String),
    /// The device is out of space (`ENOSPC`). Persistent — retrying
    /// cannot free the disk — so the engine refuses the write with
    /// state unchanged and keeps serving queries; ingest resumes once
    /// space returns.
    StorageFull(String),
    /// A transient I/O failure survived the whole retry budget. The
    /// rejected fix was not ingested; the engine state is unchanged
    /// and the caller may re-push later.
    Backpressure {
        /// The last underlying I/O error message.
        detail: String,
        /// Retries performed before giving up.
        retries: u32,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "ingest I/O error: {msg}"),
            ServeError::Wal(e) => write!(f, "{e}"),
            ServeError::Press(e) => write!(f, "{e}"),
            ServeError::Config(msg) => write!(f, "invalid ingest config: {msg}"),
            ServeError::Manifest(msg) => write!(f, "ingest manifest error: {msg}"),
            ServeError::StorageFull(msg) => write!(f, "ingest device out of space: {msg}"),
            ServeError::Backpressure { detail, retries } => {
                write!(f, "ingest backpressure after {retries} retries: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::StorageFull(msg) => ServeError::StorageFull(msg),
            other => ServeError::Wal(other),
        }
    }
}

impl From<PressError> for ServeError {
    fn from(e: PressError) -> Self {
        ServeError::Press(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        if store_io::is_storage_full(&e) {
            ServeError::StorageFull(e.to_string())
        } else {
            ServeError::Io(e.to_string())
        }
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Engine configuration. Compression parameters (θ, BTC bounds,
/// decomposer) come from the [`Press`] handle, not from here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Input-hardening policy applied per fix.
    pub policy: SessionPolicy,
    /// Seconds of *stream* time (not wall clock — recovery must replay
    /// identically) after which a silent session is finalized; `<= 0.0`
    /// disables idle finalization.
    pub idle_timeout: f64,
    /// Segment rollover size: a session's buffer is cut into a pending
    /// segment when it reaches this many points. `0` disables (unbounded
    /// sessions; not recommended for long-lived fleets).
    pub max_session_points: usize,
    /// Trajectories per block in the published corpus.
    pub block_size: usize,
    /// Worker threads for parallel segment matching in [`IngestEngine::flush`].
    pub threads: usize,
    /// Deterministic matcher budget (Viterbi lattice transitions); a
    /// segment whose lattice exceeds this is shed, not matched. `0`
    /// disables shedding.
    pub max_lattice_work: u64,
    /// Degraded-mode salvage: how many times a segment may be split on
    /// `BrokenChain`/`InvalidSample` before the remainder is dropped.
    pub max_salvage_splits: usize,
    /// Most recent quarantined fixes kept for inspection.
    pub quarantine_log_cap: usize,
    /// When the engine fsyncs the journal and how it retries transient
    /// write failures (see [`DurabilityPolicy`]). Only sync *timing* —
    /// never corpus bytes — depends on this.
    pub durability: DurabilityPolicy,
    /// Memory budget: total points buffered across live sessions. When
    /// an accepted fix pushes the total past this, least-recently-active
    /// sessions are evicted (finalized to the pending queue — their
    /// points are already WAL-backed) until the budget holds. `0`
    /// disables. Eviction is driven purely by journaled state, so
    /// replay reproduces it exactly.
    pub max_buffered_points: usize,
    /// Memory budget: live session count, same LRU eviction. `0`
    /// disables.
    pub max_sessions: usize,
    /// Most recent evicted vehicle ids kept for inspection (the
    /// eviction-order determinism proptest reads this).
    pub eviction_log_cap: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            policy: SessionPolicy::default(),
            idle_timeout: 600.0,
            max_session_points: 4096,
            block_size: 8,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            max_lattice_work: 2_000_000,
            max_salvage_splits: 8,
            quarantine_log_cap: 1024,
            durability: DurabilityPolicy::default(),
            max_buffered_points: 0,
            max_sessions: 0,
            eviction_log_cap: 1024,
        }
    }
}

/// The engine's answer for one pushed fix. Acks never lie about
/// durability: `Accepted` means the fix's frame is covered by a
/// completed fsync; `Journaled` means it is written but its covering
/// group-commit sync has not happened yet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ack {
    /// Fix journaled, buffered, **and durable**: a sync covering its
    /// frame has succeeded (`offset <= durable_offset()`), so the fix
    /// survives power loss, not just process death.
    Accepted { offset: u64 },
    /// Fix journaled and buffered, not yet synced. `offset` is the
    /// journal length with this fix's frame included; the fix becomes
    /// durable when a later group-commit sync, explicit
    /// [`IngestEngine::sync`], or checkpoint advances
    /// [`IngestEngine::durable_offset`] past it. A *process* crash
    /// cannot lose it (the bytes are in the OS page cache); power loss
    /// before the covering sync can.
    Journaled { offset: u64 },
    /// Harmless defect repaired per policy (duplicate coalesced); the
    /// fix is intentionally not journaled.
    Repaired,
    /// Fix rejected into quarantine with a typed reason.
    Quarantined(QuarantineReason),
}

impl Ack {
    /// The journal offset for ingested fixes (`Accepted`/`Journaled`),
    /// `None` for repaired or quarantined ones.
    pub fn offset(&self) -> Option<u64> {
        match *self {
            Ack::Accepted { offset } | Ack::Journaled { offset } => Some(offset),
            Ack::Repaired | Ack::Quarantined(_) => None,
        }
    }

    /// True when the fix was ingested (journaled and buffered),
    /// whether or not its covering sync has happened yet.
    pub fn is_ingested(&self) -> bool {
        self.offset().is_some()
    }
}

/// A quarantined fix, kept in a bounded log for observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineRecord {
    /// Vehicle whose fix was rejected.
    pub vehicle: u64,
    /// The offending fix, verbatim.
    pub sample: GpsSample,
    /// Why it was rejected.
    pub reason: QuarantineReason,
}

/// Ingest counters. Observability only — counters are rebuilt from the
/// journal on recovery, so quarantine/repair counts (which are never
/// journaled) restart at zero after a crash.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestStats {
    /// Fixes accepted (journaled and buffered), including replayed ones.
    pub points_accepted: u64,
    /// Fixes repaired by coalescing.
    pub points_repaired: u64,
    /// Fixes quarantined, by [`QuarantineReason::index`].
    pub points_quarantined: [u64; 4],
    /// Segments finalized by the idle sweep.
    pub segments_idle: u64,
    /// Segments cut by the session-size rollover.
    pub segments_cap: u64,
    /// Segments finalized explicitly.
    pub segments_explicit: u64,
    /// Matched pieces compressed into the corpus.
    pub pieces_compressed: u64,
    /// Salvage splits performed across all flushed segments.
    pub salvage_splits: u64,
    /// Pieces dropped (unmatchable even after salvage).
    pub pieces_dropped: u64,
    /// Of the dropped pieces, how many were shed by the lattice budget.
    pub pieces_shed: u64,
    /// Successful journal fsyncs (group-commit, explicit, checkpoint).
    pub sync_calls: u64,
    /// Frames made durable by those syncs (group-commit batch total;
    /// average batch = `synced_frames / sync_calls`).
    pub synced_frames: u64,
    /// Largest single group-commit batch, in frames.
    pub max_sync_batch: u64,
    /// Transient I/O failures that were retried (append or sync).
    pub io_retries: u64,
    /// Sync attempts that failed even after retries (the engine stays
    /// up; the frames remain journaled-not-durable until a later sync
    /// succeeds).
    pub sync_failures: u64,
    /// Sessions evicted by the memory budget (LRU order).
    pub sessions_evicted: u64,
    /// Pushes refused with [`ServeError::Backpressure`].
    pub backpressure_rejections: u64,
    /// Pushes refused with [`ServeError::StorageFull`].
    pub storage_full_rejections: u64,
}

impl IngestStats {
    /// Total quarantined fixes across all reasons.
    pub fn total_quarantined(&self) -> u64 {
        self.points_quarantined.iter().sum()
    }

    /// Mean group-commit batch size in frames (0.0 before any sync).
    pub fn avg_sync_batch(&self) -> f64 {
        if self.sync_calls == 0 {
            0.0
        } else {
            self.synced_frames as f64 / self.sync_calls as f64
        }
    }
}

/// What [`IngestEngine::open`] found on disk and rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Trajectories loaded from the checkpointed corpus.
    pub corpus_trajectories: usize,
    /// `Point` frames replayed from the journal.
    pub replayed_points: u64,
    /// `Finalize`/`FinalizeAll` frames replayed.
    pub replayed_finalizes: u64,
    /// Bytes truncated from the journal's torn tail.
    pub torn_bytes: u64,
    /// True when no journal existed (fresh directory).
    pub wal_was_fresh: bool,
    /// Live sessions rebuilt by the replay.
    pub sessions_rebuilt: usize,
    /// Points sitting in session buffers or pending segments after the
    /// replay (accepted but not yet in the corpus).
    pub points_in_flight: usize,
}

/// A finalized-but-unmatched segment awaiting [`IngestEngine::flush`].
#[derive(Debug, Clone)]
struct PendingSegment {
    samples: Vec<GpsSample>,
}

/// Per-segment outcome from the parallel matching stage.
struct SegmentOutcome {
    compressed: Vec<CompressedTrajectory>,
    splits: u64,
    dropped: u64,
    shed: u64,
}

/// Background re-persistence of a [`LazySpCache`] hot-tree set, ticked
/// by the **stream clock** (never wall clock — replay must be able to
/// reproduce the same saves): whenever `max_time` has advanced at least
/// `interval` past the last save, the cache's resident trees are written
/// to `path`, so a process restarted next to the artifact warms its SP
/// cache instead of paying cold Dijkstras.
struct HotTreePersist {
    cache: Arc<LazySpCache>,
    path: PathBuf,
    interval: f64,
    /// Stream time of the last save; `NEG_INFINITY` arms the timer on
    /// the first accepted fix.
    last_save: f64,
}

/// Maps a timestamp to a key that sorts like the timestamp (total order
/// over all non-NaN floats), for the idle-session index.
fn time_key(t: f64) -> u64 {
    let bits = t.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Multi-vehicle streaming ingest over one directory. See the module
/// docs for the ack/durability, recovery, and checkpoint contracts.
pub struct IngestEngine {
    dir: PathBuf,
    config: IngestConfig,
    matcher: Arc<MapMatcher>,
    press: Press,
    /// The storage backend every durable write goes through (real
    /// filesystem in production, fault injector in tests).
    io: Arc<dyn IoBackend>,
    /// Committed checkpoint generation — names the live corpus/journal
    /// pair (see [`crate::manifest`]).
    generation: u64,
    wal: Wal,
    /// Journal bytes appended since the last successful fsync — the
    /// group-commit byte trigger's accumulator.
    unsynced_bytes: u64,
    /// Frames appended since the last successful fsync.
    unsynced_frames: u64,
    /// Stream time of the last successful fsync (`NEG_INFINITY` arms
    /// the interval trigger on the first accepted fix).
    last_sync_time: f64,
    /// Durability watermark: every frame ending at or before this
    /// offset has been covered by a completed fsync.
    durable_offset: u64,
    /// Points currently buffered across live sessions (the memory
    /// budget's accumulator; pending segments are freed by `flush`).
    buffered: usize,
    /// Ring of the most recently evicted vehicles (capacity
    /// `config.eviction_log_cap`), oldest first.
    eviction_log: VecDeque<u64>,
    sessions: HashMap<u64, Session>,
    /// Sessions ordered by last-accepted timestamp: `(time_key(last.t),
    /// vehicle)`. Exactly the sessions with `last.is_some()`.
    idle: BTreeSet<(u64, u64)>,
    /// Largest timestamp ever accepted — the observed stream clock that
    /// drives idle sweeps (never wall clock: replay must be identical).
    max_time: f64,
    arrival_seq: u64,
    pending: Vec<PendingSegment>,
    finished: Vec<CompressedTrajectory>,
    stats: IngestStats,
    /// Ring of the most recent quarantined fixes (capacity
    /// `config.quarantine_log_cap`), oldest first.
    quarantine: VecDeque<QuarantineRecord>,
    recovery: RecoveryReport,
    hot_persist: Option<HotTreePersist>,
}

impl IngestEngine {
    /// Opens (or creates) the ingest directory, recovering any previous
    /// state: corpus first, then a full journal replay through the live
    /// ingest path.
    pub fn open(
        dir: &Path,
        matcher: Arc<MapMatcher>,
        press: Press,
        config: IngestConfig,
    ) -> Result<IngestEngine> {
        Self::open_with_io(dir, matcher, press, config, store_io::real_io())
    }

    /// [`IngestEngine::open`] through an explicit
    /// [`press_store::IoBackend`]: every durable write — journal
    /// appends and fsyncs, checkpoint artifacts, manifest commits —
    /// goes through `io`, so disk faults are injectable. Recovery
    /// reads stay direct (read-path corruption already has its own
    /// typed taxonomy).
    pub fn open_with_io(
        dir: &Path,
        matcher: Arc<MapMatcher>,
        press: Press,
        config: IngestConfig,
        io: Arc<dyn IoBackend>,
    ) -> Result<IngestEngine> {
        if config.block_size == 0 {
            return Err(ServeError::Config("block_size must be at least 1".into()));
        }
        if config.idle_timeout.is_nan() {
            return Err(ServeError::Config("idle_timeout must not be NaN".into()));
        }
        config.durability.validate().map_err(ServeError::Config)?;
        std::fs::create_dir_all(dir)?;
        let generation =
            match manifest::read(dir).map_err(|e| ServeError::Manifest(e.to_string()))? {
                Some(gen) => {
                    // Uncommitted leftovers of a checkpoint that crashed
                    // before its manifest rename (or a superseded generation
                    // whose cleanup was interrupted) are garbage.
                    manifest::gc(dir, gen)?;
                    gen
                }
                None => {
                    // Artifacts without a manifest mean the manifest was
                    // deleted or the directory predates this format: refuse
                    // rather than silently restarting from nothing.
                    if manifest::has_artifacts(dir)? {
                        return Err(ServeError::Manifest(
                            "ingest artifacts present but MANIFEST is missing".into(),
                        ));
                    }
                    manifest::commit_with(io.as_ref(), dir, 0)
                        .map_err(|e| ServeError::Manifest(e.to_string()))?;
                    0
                }
            };
        let corpus_path = dir.join(manifest::corpus_file_name(generation));
        let finished = if corpus_path.exists() {
            // Mapped open: recovery walks the block directory without
            // pulling the whole checkpoint into memory first; each block
            // is faulted in (and CRC-checked) once as `decode_all` visits
            // it, and the answers are bit-identical to an owned open.
            TrajectoryStore::open_mapped(&corpus_path)?.decode_all()?
        } else {
            Vec::new()
        };
        let (wal, replay) =
            Wal::open_with(&dir.join(manifest::wal_file_name(generation)), io.clone())?;
        let mut engine = IngestEngine {
            dir: dir.to_path_buf(),
            config,
            matcher,
            press,
            io,
            generation,
            wal,
            unsynced_bytes: 0,
            unsynced_frames: 0,
            last_sync_time: f64::NEG_INFINITY,
            durable_offset: 0,
            buffered: 0,
            eviction_log: VecDeque::new(),
            sessions: HashMap::new(),
            idle: BTreeSet::new(),
            max_time: f64::NEG_INFINITY,
            arrival_seq: 0,
            pending: Vec::new(),
            finished,
            stats: IngestStats::default(),
            quarantine: VecDeque::new(),
            recovery: RecoveryReport::default(),
            hot_persist: None,
        };
        let mut replayed_points = 0u64;
        let mut replayed_finalizes = 0u64;
        for rec in &replay.records {
            match *rec {
                WalRecord::Point { vehicle, x, y, t } => {
                    replayed_points += 1;
                    let sample = GpsSample {
                        point: Point::new(x, y),
                        t,
                    };
                    // Only accepted fixes were journaled, and validation
                    // depends only on journaled state, so the replayed
                    // verdict is Accept again by construction.
                    debug_assert_eq!(
                        engine.vet(vehicle, &sample),
                        Disposition::Accept,
                        "journaled fix must replay as accepted"
                    );
                    engine.apply_accept(vehicle, sample);
                }
                WalRecord::Finalize { vehicle } => {
                    replayed_finalizes += 1;
                    engine.apply_finalize(vehicle);
                }
                WalRecord::FinalizeAll => {
                    replayed_finalizes += 1;
                    engine.apply_finalize_all();
                }
                WalRecord::Resume { vehicle, x, y, t } => {
                    let mut sess = Session::new(vehicle);
                    sess.last = Some(GpsSample {
                        point: Point::new(x, y),
                        t,
                    });
                    engine.idle.insert((time_key(t), vehicle));
                    engine.sessions.insert(vehicle, sess);
                }
                WalRecord::Clock { t } => {
                    if t > engine.max_time {
                        engine.max_time = t;
                    }
                }
            }
        }
        // Everything replayed was read back from the device, so the
        // whole journal is the durability watermark; the group-commit
        // accumulators start empty.
        engine.durable_offset = engine.wal.offset();
        engine.unsynced_bytes = 0;
        engine.unsynced_frames = 0;
        engine.last_sync_time = f64::NEG_INFINITY;
        engine.recovery = RecoveryReport {
            corpus_trajectories: engine.finished.len(),
            replayed_points,
            replayed_finalizes,
            torn_bytes: replay.torn_bytes,
            wal_was_fresh: replay.fresh,
            sessions_rebuilt: engine.sessions.len(),
            points_in_flight: engine.in_flight_points(),
        };
        Ok(engine)
    }

    fn vet(&self, vehicle: u64, sample: &GpsSample) -> Disposition {
        match self.sessions.get(&vehicle) {
            Some(sess) => sess.vet(&self.config.policy, sample),
            None => Session::new(vehicle).vet(&self.config.policy, sample),
        }
    }

    /// Ingests one fix. Accepted fixes are journaled *before* they are
    /// buffered; the configured [`DurabilityPolicy`] decides when the
    /// journal is fsynced (group commit), and the ack reports honestly:
    /// [`Ack::Accepted`] only when the fix's frame is already covered
    /// by a completed sync, [`Ack::Journaled`] otherwise.
    ///
    /// An `Err` means the fix was **not** ingested and engine state is
    /// unchanged: [`ServeError::StorageFull`] for out-of-space
    /// (persistent — re-push after freeing space),
    /// [`ServeError::Backpressure`] when a transient failure survived
    /// the retry budget. The engine keeps serving queries and stays
    /// recoverable either way.
    pub fn push(&mut self, vehicle: u64, sample: GpsSample) -> Result<Ack> {
        match self.vet(vehicle, &sample) {
            Disposition::Accept => {
                let offset = self.append_retrying(&WalRecord::Point {
                    vehicle,
                    x: sample.point.x,
                    y: sample.point.y,
                    t: sample.t,
                })?;
                self.apply_accept(vehicle, sample);
                // A failed group sync is absorbed here (counted in
                // `sync_failures`): the frame IS journaled, so the
                // honest answer is Journaled, not an error.
                self.maybe_group_sync();
                if offset <= self.durable_offset {
                    Ok(Ack::Accepted { offset })
                } else {
                    Ok(Ack::Journaled { offset })
                }
            }
            Disposition::Coalesce => {
                if let Some(sess) = self.sessions.get_mut(&vehicle) {
                    sess.repaired += 1;
                }
                self.stats.points_repaired += 1;
                Ok(Ack::Repaired)
            }
            Disposition::Quarantine(reason) => {
                if let Some(sess) = self.sessions.get_mut(&vehicle) {
                    sess.quarantined[reason.index()] += 1;
                }
                self.stats.points_quarantined[reason.index()] += 1;
                if self.config.quarantine_log_cap > 0 {
                    if self.quarantine.len() == self.config.quarantine_log_cap {
                        self.quarantine.pop_front();
                    }
                    self.quarantine.push_back(QuarantineRecord {
                        vehicle,
                        sample,
                        reason,
                    });
                }
                Ok(Ack::Quarantined(reason))
            }
        }
    }

    /// Appends one record with the policy's retry/backoff, classifying
    /// failures: out-of-space is persistent (no retry, typed
    /// [`ServeError::StorageFull`]); other I/O errors are transient and
    /// retried with doubling backoff before surfacing as
    /// [`ServeError::Backpressure`]. On success the group-commit
    /// accumulators advance.
    fn append_retrying(&mut self, rec: &WalRecord) -> Result<u64> {
        let policy = self.config.durability;
        let mut attempt = 0u32;
        loop {
            let before = self.wal.offset();
            match self.wal.append(rec) {
                Ok(offset) => {
                    self.unsynced_bytes += offset - before;
                    self.unsynced_frames += 1;
                    return Ok(offset);
                }
                Err(WalError::StorageFull(msg)) => {
                    self.stats.storage_full_rejections += 1;
                    return Err(ServeError::StorageFull(msg));
                }
                Err(WalError::Io(detail)) => {
                    if attempt >= policy.max_retries {
                        self.stats.backpressure_rejections += 1;
                        return Err(ServeError::Backpressure {
                            detail,
                            retries: attempt,
                        });
                    }
                    attempt += 1;
                    self.stats.io_retries += 1;
                    Self::backoff(&policy, attempt);
                }
                Err(other) => return Err(other.into()),
            }
        }
    }

    /// Sleeps the policy's doubling backoff before retry `attempt`.
    /// Wall-clock sleep is safe here: it delays the retry but decides
    /// nothing — all decisions key off journaled stream state.
    fn backoff(policy: &DurabilityPolicy, attempt: u32) {
        let ms = policy.backoff_ms(attempt);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    /// Issues the group-commit fsync if a policy threshold has tripped.
    /// Failures are absorbed into `sync_failures` — the unsynced frames
    /// stay journaled and the next trigger retries the sync.
    fn maybe_group_sync(&mut self) {
        if self.unsynced_frames == 0 {
            return;
        }
        let policy = self.config.durability;
        if policy.sync_interval > 0.0
            && self.last_sync_time == f64::NEG_INFINITY
            && self.max_time.is_finite()
        {
            // Arm the interval trigger on the first observed stream
            // time; the first timed sync lands one interval later.
            self.last_sync_time = self.max_time;
        }
        let by_bytes = policy.sync_bytes > 0 && self.unsynced_bytes >= policy.sync_bytes;
        let by_time = policy.sync_interval > 0.0
            && self.last_sync_time.is_finite()
            && self.max_time - self.last_sync_time >= policy.sync_interval;
        if (by_bytes || by_time) && self.sync_retrying().is_err() {
            self.stats.sync_failures += 1;
        }
    }

    /// Fsyncs the journal with the policy's retry/backoff; on success
    /// advances the durability watermark and group-commit counters.
    fn sync_retrying(&mut self) -> Result<()> {
        let policy = self.config.durability;
        let mut attempt = 0u32;
        loop {
            match self.wal.sync() {
                Ok(()) => {
                    self.stats.sync_calls += 1;
                    self.stats.synced_frames += self.unsynced_frames;
                    self.stats.max_sync_batch = self.stats.max_sync_batch.max(self.unsynced_frames);
                    self.unsynced_bytes = 0;
                    self.unsynced_frames = 0;
                    self.durable_offset = self.wal.offset();
                    if self.max_time.is_finite() {
                        self.last_sync_time = self.max_time;
                    }
                    return Ok(());
                }
                Err(WalError::StorageFull(msg)) => {
                    return Err(ServeError::StorageFull(msg));
                }
                Err(WalError::Io(detail)) => {
                    if attempt >= policy.max_retries {
                        return Err(ServeError::Backpressure {
                            detail,
                            retries: attempt,
                        });
                    }
                    attempt += 1;
                    self.stats.io_retries += 1;
                    Self::backoff(&policy, attempt);
                }
                Err(other) => return Err(other.into()),
            }
        }
    }

    /// Applies an accepted fix: buffer, segment rollover, stream clock,
    /// idle sweep. Shared verbatim by live ingest and journal replay.
    fn apply_accept(&mut self, vehicle: u64, sample: GpsSample) {
        let arrival = self.arrival_seq;
        self.arrival_seq += 1;
        self.stats.points_accepted += 1;
        let sess = self
            .sessions
            .entry(vehicle)
            .or_insert_with(|| Session::new(vehicle));
        if let Some(prev) = sess.last {
            self.idle.remove(&(time_key(prev.t), vehicle));
        }
        sess.accept(sample, arrival);
        self.buffered += 1;
        self.idle.insert((time_key(sample.t), vehicle));
        if self.config.max_session_points > 0
            && sess.samples.len() >= self.config.max_session_points
        {
            let samples = sess.take_segment();
            self.buffered -= samples.len();
            self.pending.push(PendingSegment { samples });
            self.stats.segments_cap += 1;
        }
        if sample.t > self.max_time {
            self.max_time = sample.t;
        }
        self.sweep_idle();
        self.enforce_memory_budget();
        self.tick_hot_persist();
    }

    /// LRU eviction for the memory budget: while either
    /// [`IngestConfig::max_buffered_points`] or
    /// [`IngestConfig::max_sessions`] is exceeded, the session with the
    /// oldest last-accepted fix is finalized to the pending queue —
    /// exactly what the idle sweep would eventually do, just earlier.
    /// Every input (buffer occupancy, the idle index) derives from
    /// journaled state, so replay evicts the same sessions in the same
    /// order, and eviction is invisible in the recovered corpus.
    fn enforce_memory_budget(&mut self) {
        let max_points = self.config.max_buffered_points;
        let max_sessions = self.config.max_sessions;
        if max_points == 0 && max_sessions == 0 {
            return;
        }
        loop {
            let over_points = max_points > 0 && self.buffered > max_points;
            let over_sessions = max_sessions > 0 && self.sessions.len() > max_sessions;
            if !(over_points || over_sessions) {
                return;
            }
            // Every live session has a last fix and is idle-indexed, so
            // the loop always makes progress while anything is over.
            let Some(&(_, vehicle)) = self.idle.iter().next() else {
                return;
            };
            self.close_session(vehicle);
            self.stats.sessions_evicted += 1;
            if self.config.eviction_log_cap > 0 {
                if self.eviction_log.len() == self.config.eviction_log_cap {
                    self.eviction_log.pop_front();
                }
                self.eviction_log.push_back(vehicle);
            }
        }
    }

    /// Stream-time timer tick for the background hot-tree persistence
    /// (see [`IngestEngine::enable_hot_tree_persist`]). Best-effort:
    /// a failed write only skips this tick — persistence is a warm-start
    /// optimization, never part of the durability contract — so the
    /// shared accept path stays infallible. Saves are counted in
    /// [`press_network::CacheStats::hot_saves`].
    fn tick_hot_persist(&mut self) {
        let Some(hp) = &mut self.hot_persist else {
            return;
        };
        if !self.max_time.is_finite() {
            return;
        }
        if hp.last_save == f64::NEG_INFINITY {
            // Arm on the first observed stream time; the first save lands
            // one full interval later, once there are trees worth saving.
            hp.last_save = self.max_time;
            return;
        }
        if self.max_time - hp.last_save >= hp.interval {
            hp.last_save = self.max_time;
            let _ = hp.cache.save_hot_trees(&hp.path);
        }
    }

    /// Enables background re-persistence of `cache`'s hot-tree set to
    /// `path` every `interval_secs` seconds of **stream time** (the
    /// observed `max_time` clock idle sweeps use; wall clock would make
    /// replay nondeterministic). Each save rewrites the artifact with the
    /// currently-resident trees and increments
    /// [`press_network::CacheStats::hot_saves`]. Pass the cache the
    /// engine's SP provider wraps, so the persisted set tracks the trees
    /// serving actually heats up.
    pub fn enable_hot_tree_persist(
        &mut self,
        cache: Arc<LazySpCache>,
        path: PathBuf,
        interval_secs: f64,
    ) -> Result<()> {
        if !interval_secs.is_finite() || interval_secs <= 0.0 {
            return Err(ServeError::Config(
                "hot-tree persist interval must be positive".into(),
            ));
        }
        self.hot_persist = Some(HotTreePersist {
            cache,
            path,
            interval: interval_secs,
            last_save: f64::NEG_INFINITY,
        });
        Ok(())
    }

    /// Finalizes every session whose last accepted fix is more than
    /// `idle_timeout` behind the observed stream clock.
    fn sweep_idle(&mut self) {
        if self.config.idle_timeout <= 0.0 {
            return;
        }
        loop {
            let Some(&(_, vehicle)) = self.idle.iter().next() else {
                return;
            };
            let last_t = self.sessions[&vehicle]
                .last
                .expect("idle-indexed session has a last fix")
                .t;
            if last_t + self.config.idle_timeout >= self.max_time {
                return;
            }
            self.close_session(vehicle);
            self.stats.segments_idle += 1;
        }
    }

    /// Removes `vehicle`'s session, moving any buffered samples to the
    /// pending queue. Returns true when a session existed.
    fn close_session(&mut self, vehicle: u64) -> bool {
        let Some(mut sess) = self.sessions.remove(&vehicle) else {
            return false;
        };
        if let Some(last) = sess.last {
            self.idle.remove(&(time_key(last.t), vehicle));
        }
        let samples = sess.take_segment();
        self.buffered -= samples.len();
        if !samples.is_empty() {
            self.pending.push(PendingSegment { samples });
        }
        true
    }

    fn apply_finalize(&mut self, vehicle: u64) -> bool {
        let closed = self.close_session(vehicle);
        if closed {
            self.stats.segments_explicit += 1;
        }
        closed
    }

    fn apply_finalize_all(&mut self) {
        // Deterministic order: first buffered arrival, vehicle id as the
        // tie-break (covers empty buffers) — identical live and on replay.
        let mut order: Vec<(u64, u64)> = self
            .sessions
            .values()
            .map(|s| (s.arrivals.first().copied().unwrap_or(u64::MAX), s.vehicle))
            .collect();
        order.sort_unstable();
        for (_, vehicle) in order {
            self.apply_finalize(vehicle);
        }
    }

    /// Explicitly ends `vehicle`'s trajectory (journaled, so recovery
    /// reproduces the same segmentation). Returns true when a live
    /// session was closed.
    pub fn finalize(&mut self, vehicle: u64) -> Result<bool> {
        if !self.sessions.contains_key(&vehicle) {
            return Ok(false);
        }
        self.append_retrying(&WalRecord::Finalize { vehicle })?;
        Ok(self.apply_finalize(vehicle))
    }

    /// Explicitly ends every live trajectory (journaled).
    pub fn finalize_all(&mut self) -> Result<()> {
        if self.sessions.is_empty() {
            return Ok(());
        }
        self.append_retrying(&WalRecord::FinalizeAll)?;
        self.apply_finalize_all();
        Ok(())
    }

    /// Matches and compresses all pending segments (in parallel across
    /// `config.threads`, order-preserving), appending the results to the
    /// in-memory corpus. Returns the number of pieces compressed.
    ///
    /// The journal is deliberately *not* trimmed here: flushed segments
    /// stay replayable until [`IngestEngine::checkpoint`] publishes them.
    pub fn flush(&mut self) -> Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let segments = std::mem::take(&mut self.pending);
        let matcher = Arc::clone(&self.matcher);
        let model = self.press.model();
        let press_config = self.press.config();
        let max_work = self.config.max_lattice_work;
        let max_splits = self.config.max_salvage_splits;
        let outcomes: Vec<SegmentOutcome> =
            work_steal_map(&segments, self.config.threads, |_, seg| {
                let report = matcher.match_trajectory_salvaging(&seg.samples, max_work, max_splits);
                let mut out = SegmentOutcome {
                    compressed: Vec::with_capacity(report.pieces.len()),
                    splits: report.splits as u64,
                    dropped: 0,
                    shed: 0,
                };
                for err in &report.dropped {
                    out.dropped += 1;
                    if matches!(err, MatcherError::BudgetExceeded { .. }) {
                        out.shed += 1;
                    }
                }
                for piece in report.pieces {
                    let path_samples: Vec<PathSample> = piece
                        .samples
                        .iter()
                        .map(|m| PathSample {
                            edge_idx: m.edge_idx,
                            frac: m.frac,
                            t: m.t,
                        })
                        .collect();
                    let compressed = reformat(matcher.network(), piece.edges, &path_samples)
                        .and_then(|traj| {
                            // Streaming form of `Press::compress`: online SP
                            // reduction + `encode_sp_form`, online BTC. The
                            // chunking proptests pin these bit-identical to
                            // the batch pipeline.
                            let mut spc = OnlineSpCompressor::new(Arc::clone(model.sp()));
                            let mut sp_form = Vec::with_capacity(traj.path.edges.len());
                            for &e in &traj.path.edges {
                                sp_form.extend(spc.push(e));
                            }
                            sp_form.extend(spc.finish());
                            let spatial =
                                model.encode_sp_form(&sp_form, press_config.decomposer)?;
                            let mut btc = OnlineBtc::new(press_config.bounds);
                            let mut kept = Vec::with_capacity(traj.temporal.len());
                            for &p in &traj.temporal.points {
                                kept.extend(btc.push(p));
                            }
                            kept.extend(btc.finish());
                            Ok(CompressedTrajectory {
                                spatial,
                                temporal: TemporalSequence::new_unchecked(kept),
                            })
                        });
                    match compressed {
                        Ok(ct) => out.compressed.push(ct),
                        Err(_) => out.dropped += 1,
                    }
                }
                out
            });
        let mut pieces = 0usize;
        for out in outcomes {
            pieces += out.compressed.len();
            self.stats.pieces_compressed += out.compressed.len() as u64;
            self.stats.salvage_splits += out.splits;
            self.stats.pieces_dropped += out.dropped;
            self.stats.pieces_shed += out.shed;
            self.finished.extend(out.compressed);
        }
        Ok(pieces)
    }

    /// Flushes, then commits the published corpus and the journal —
    /// shrunk down to just the in-flight state — as **one atomic pair**:
    /// both are written under the next generation number and flipped
    /// live by a single manifest rename (see [`crate::manifest`]), so a
    /// crash at any byte of the checkpoint recovers a consistent
    /// corpus/journal pair. After a checkpoint, recovery cost is
    /// proportional to the in-flight points, not the history. Returns
    /// the number of trajectories in the corpus.
    pub fn checkpoint(&mut self) -> Result<usize> {
        self.flush()?;
        let next = self.generation + 1;
        let query = QueryEngine::new(self.press.model());
        let bytes =
            TrajectoryStore::to_store_bytes(&query, &self.finished, self.config.block_size)?;
        // The generation-stamped name is invisible to recovery until
        // the manifest commit; the atomic write additionally keeps a
        // faulted checkpoint from leaving a half-written artifact under
        // a name a *later* checkpoint could collide with.
        let corpus = self.dir.join(manifest::corpus_file_name(next));
        store_io::atomic_write_file(self.io.as_ref(), &corpus, &bytes)?;
        // Rebuild the journal: clock, resumes (sessions whose state is
        // only the last fix), then buffered points in arrival order.
        let mut records = Vec::new();
        if self.max_time.is_finite() {
            records.push(WalRecord::Clock { t: self.max_time });
        }
        let mut resumes: Vec<&Session> = self
            .sessions
            .values()
            .filter(|s| s.samples.is_empty() && s.last.is_some())
            .collect();
        resumes.sort_unstable_by_key(|s| s.vehicle);
        for sess in resumes {
            let last = sess.last.expect("filtered on last.is_some");
            records.push(WalRecord::Resume {
                vehicle: sess.vehicle,
                x: last.point.x,
                y: last.point.y,
                t: last.t,
            });
        }
        let mut points: Vec<(u64, u64, GpsSample)> = Vec::new();
        for sess in self.sessions.values() {
            for (&arrival, &sample) in sess.arrivals.iter().zip(&sess.samples) {
                points.push((arrival, sess.vehicle, sample));
            }
        }
        points.sort_unstable_by_key(|&(arrival, vehicle, _)| (arrival, vehicle));
        for (_, vehicle, sample) in points {
            records.push(WalRecord::Point {
                vehicle,
                x: sample.point.x,
                y: sample.point.y,
                t: sample.t,
            });
        }
        let wal = Wal::create_with(
            &self.dir.join(manifest::wal_file_name(next)),
            &records,
            self.io.clone(),
        )?;
        // The commit point: one atomic rename flips recovery from the
        // old (corpus, journal) pair to the new one. A typed failure
        // anywhere up to here leaves the engine on its old generation,
        // old journal, fully consistent — the uncommitted new-generation
        // files are GC'd later.
        manifest::commit_with(self.io.as_ref(), &self.dir, next)
            .map_err(|e| ServeError::Manifest(e.to_string()))?;
        self.generation = next;
        self.wal = wal;
        // `Wal::create_with` synced the new journal, so everything in it
        // is durable; the group-commit accumulators restart empty.
        self.durable_offset = self.wal.offset();
        self.unsynced_bytes = 0;
        self.unsynced_frames = 0;
        if self.max_time.is_finite() {
            self.last_sync_time = self.max_time;
        }
        // The superseded generation is dead weight now. Best-effort
        // only: a cleanup fault must not fail a *committed* checkpoint
        // (and must not swap the journal handle back) — the next open's
        // GC finishes the job, and leftovers are inert meanwhile.
        let _ = manifest::gc(&self.dir, next);
        Ok(self.finished.len())
    }

    /// Forces journal bytes to stable storage (fsync) with the policy's
    /// retry/backoff, advancing [`IngestEngine::durable_offset`] on
    /// success: afterwards every previously `Journaled` ack is durable.
    /// Failures are typed ([`ServeError::StorageFull`] /
    /// [`ServeError::Backpressure`]) and leave the frames journaled —
    /// a later sync can still cover them.
    pub fn sync(&mut self) -> Result<()> {
        let r = self.sync_retrying();
        if r.is_err() {
            self.stats.sync_failures += 1;
        }
        r
    }

    /// Accepted points not yet in the in-memory corpus.
    fn in_flight_points(&self) -> usize {
        self.sessions
            .values()
            .map(|s| s.samples.len())
            .sum::<usize>()
            + self.pending.iter().map(|p| p.samples.len()).sum::<usize>()
    }

    /// The ingest directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The committed checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Path of the published corpus artifact (current generation).
    pub fn corpus_path(&self) -> PathBuf {
        self.dir.join(manifest::corpus_file_name(self.generation))
    }

    /// Path of the journal (current generation).
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(manifest::wal_file_name(self.generation))
    }

    /// Current journal length — the latest ingested-fix ack offset.
    pub fn wal_offset(&self) -> u64 {
        self.wal.offset()
    }

    /// Durability watermark: every journal frame ending at or before
    /// this offset is covered by a completed fsync. An ack with
    /// `offset <= durable_offset()` has power-loss durability.
    pub fn durable_offset(&self) -> u64 {
        self.durable_offset
    }

    /// Points currently buffered across live sessions — what the
    /// memory budget ([`IngestConfig::max_buffered_points`]) bounds.
    pub fn buffered_points(&self) -> usize {
        self.buffered
    }

    /// The bounded eviction log: the most recent
    /// [`IngestConfig::eviction_log_cap`] evicted vehicles, oldest
    /// first.
    pub fn eviction_log(&self) -> &VecDeque<u64> {
        &self.eviction_log
    }

    /// The engine configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The compression handle (model + parameters).
    pub fn press(&self) -> &Press {
        &self.press
    }

    /// Live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Finalized segments awaiting [`IngestEngine::flush`].
    pub fn pending_segments(&self) -> usize {
        self.pending.len()
    }

    /// The in-memory compressed corpus (checkpointed + flushed).
    pub fn finished(&self) -> &[CompressedTrajectory] {
        &self.finished
    }

    /// Ingest counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The bounded quarantine log: the most recent
    /// [`IngestConfig::quarantine_log_cap`] quarantined fixes, oldest
    /// first.
    pub fn quarantine_log(&self) -> &VecDeque<QuarantineRecord> {
        &self.quarantine
    }

    /// What the last [`IngestEngine::open`] recovered.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }
}
