//! Deterministic fault injection for the ingest engine.
//!
//! A [`FaultPlan`] is a seeded recipe of stream-level faults (dropped,
//! corrupted, duplicated, and reordered fixes) plus helpers to simulate
//! a crash by tearing the journal at an arbitrary byte offset. The same
//! plan over the same input always produces the same mangled stream, so
//! any failing recovery test reproduces from its seed alone.

use press_matcher::GpsSample;
use press_network::Point;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io;
use std::path::Path;

/// One timestamped fix addressed to a vehicle — the unit the fault
/// injector mangles.
pub type Event = (u64, GpsSample);

/// A seeded recipe of stream faults. Probabilities are independent and
/// applied per event, in the order drop → corrupt → duplicate; a final
/// pass swaps adjacent survivors to model reordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; two runs of the same plan are identical.
    pub seed: u64,
    /// Probability an event is silently dropped (sensor dead zone).
    pub drop_prob: f64,
    /// Probability an event is corrupted (NaN/∞ fields, teleports,
    /// timestamp rollbacks — the defect is chosen by the RNG).
    pub corrupt_prob: f64,
    /// Probability an event is re-sent verbatim (ack-loss retry).
    pub duplicate_prob: f64,
    /// Probability an event swaps with its successor (UDP reordering).
    pub reorder_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.02,
            corrupt_prob: 0.02,
            duplicate_prob: 0.02,
            reorder_prob: 0.02,
        }
    }
}

impl FaultPlan {
    /// Applies the plan to a clean event stream, returning the mangled
    /// stream the ingest engine will be fed.
    pub fn mangle(&self, events: &[Event]) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out: Vec<Event> = Vec::with_capacity(events.len() + events.len() / 8);
        for &(vehicle, sample) in events {
            if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
                continue;
            }
            let mut sample = sample;
            if self.corrupt_prob > 0.0 && rng.gen_bool(self.corrupt_prob) {
                sample = corrupt(&mut rng, sample);
            }
            out.push((vehicle, sample));
            if self.duplicate_prob > 0.0 && rng.gen_bool(self.duplicate_prob) {
                out.push((vehicle, sample));
            }
        }
        if self.reorder_prob > 0.0 && out.len() >= 2 {
            for i in 0..out.len() - 1 {
                if rng.gen_bool(self.reorder_prob) {
                    out.swap(i, i + 1);
                }
            }
        }
        out
    }
}

/// Picks one defect class and applies it to `sample`.
fn corrupt(rng: &mut StdRng, sample: GpsSample) -> GpsSample {
    let mut s = sample;
    match rng.gen_range(0..6u32) {
        0 => s.point = Point::new(f64::NAN, s.point.y),
        1 => s.point = Point::new(s.point.x, f64::INFINITY),
        2 => s.t = f64::NAN,
        3 => s.t = f64::NEG_INFINITY,
        // Teleport: a jump far beyond any sane per-second speed.
        4 => s.point = Point::new(s.point.x + 1.0e7, s.point.y - 1.0e7),
        // Timestamp rollback: the fix claims to predate the stream.
        _ => s.t -= 1.0e6,
    }
    s
}

/// Simulates a kill by truncating the committed (manifest-live) journal
/// of `shard` at `offset` (clamped to the current length). Returns the
/// resulting length. This models a crash mid-append on that shard:
/// everything past the offset — at most the frames whose acks never
/// returned durable — vanishes, while every other shard's journal is
/// untouched.
pub fn truncate_shard_wal(dir: &Path, shard: u32, offset: u64) -> io::Result<u64> {
    let path = crate::manifest::live_shard_wal_path(dir, shard)?;
    let len = std::fs::metadata(&path)?.len();
    let cut = offset.min(len);
    let f = std::fs::OpenOptions::new().write(true).open(&path)?;
    f.set_len(cut)?;
    f.sync_data()?;
    Ok(cut)
}

/// [`truncate_shard_wal`] for shard 0 — the whole journal of a
/// single-shard directory.
pub fn truncate_wal(dir: &Path, offset: u64) -> io::Result<u64> {
    truncate_shard_wal(dir, 0, offset)
}

/// Committed length of `shard`'s journal, for choosing kill offsets.
pub fn shard_wal_len(dir: &Path, shard: u32) -> io::Result<u64> {
    Ok(std::fs::metadata(crate::manifest::live_shard_wal_path(dir, shard)?)?.len())
}

/// [`shard_wal_len`] for shard 0.
pub fn wal_len(dir: &Path) -> io::Result<u64> {
    shard_wal_len(dir, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                (
                    (i % 3) as u64,
                    GpsSample {
                        point: Point::new(i as f64, -(i as f64)),
                        t: i as f64,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn mangle_is_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 42,
            drop_prob: 0.2,
            corrupt_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
        };
        let evs = events(200);
        let a = plan.mangle(&evs);
        let b = plan.mangle(&evs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            // Bitwise equality so NaN corruptions compare equal too.
            assert_eq!(x.1.point.x.to_bits(), y.1.point.x.to_bits());
            assert_eq!(x.1.point.y.to_bits(), y.1.point.y.to_bits());
            assert_eq!(x.1.t.to_bits(), y.1.t.to_bits());
        }
        let other = FaultPlan { seed: 43, ..plan };
        let c = other.mangle(&evs);
        let same = a.len() == c.len()
            && a.iter()
                .zip(&c)
                .all(|(x, y)| x.0 == y.0 && x.1.t.to_bits() == y.1.t.to_bits());
        assert!(!same, "different seeds should mangle differently");
    }

    #[test]
    fn zero_probabilities_pass_the_stream_through() {
        let plan = FaultPlan {
            seed: 7,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
        };
        let evs = events(50);
        assert_eq!(plan.mangle(&evs), evs);
    }
}
