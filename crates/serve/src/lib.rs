//! `press-serve` — fault-tolerant fleet ingest for PRESS.
//!
//! Turns the batch PRESS pipeline (HMM map matching → reformat → hybrid
//! spatial compression + bounded temporal compression) into a streaming
//! engine that many vehicles feed concurrently, hardened for the three
//! ways real fleet ingest fails: dirty input, pathological input, and
//! crashes.
//!
//! # Architecture
//!
//! ```text
//!  push(vehicle, fix) ── route: splitmix64(vehicle) % shards
//!      │  vet: NaN/∞, out-of-order, duplicate, teleport → quarantine
//!      ▼
//!  shard k ─ ingest.<gen>.s<k>.wal ── append CRC-framed record, ACK
//!      │       (its own journal, durability accumulators, sessions,
//!      │        memory-budget share — an independent failure domain)
//!      ▼
//!  Session{vehicle} ── buffer; idle-timeout / size-cap segmentation
//!      │ finalize
//!      ▼
//!  pending ── flush(): parallel salvage-matching + online compression
//!      │ checkpoint (incremental: clean shards hard-link)
//!      ▼
//!  corpus.<gen>.s<k>.press × N + ingest.<gen>.s<k>.wal × N ── block
//!      stores + shrunk WALs, committed as one SET by a single atomic
//!      MANIFEST rename
//! ```
//!
//! # Guarantees
//!
//! * **No acked point is lost.** A fix is [`Ack::Accepted`] only after
//!   its WAL frame is written; recovery replays every complete frame
//!   and truncates at most the torn, never-acked tail.
//! * **Faults are shard-local.** A full disk, sticky I/O error, or
//!   corrupt journal on one shard degrades only that shard — surfaced
//!   as typed [`ServeError::ShardDegraded`] with per-shard counters —
//!   while pushes routed to healthy shards keep acking and the
//!   published corpus keeps serving.
//! * **Recovery is deterministic.** Replay goes through the exact live
//!   ingest path, per shard and in parallel, and everything that
//!   influences segmentation (stream clock, session order, arrival
//!   order) is journaled or derived from the journal — a recovered
//!   engine's corpus is byte-identical to a clean run over the acked
//!   prefix of each shard.
//! * **The published corpus is shard-count invariant.** Trajectories
//!   carry canonical merge keys (vehicle, segment sequence, piece), so
//!   the merged corpus bytes are identical for any shard count and any
//!   flush-worker count.
//! * **Checkpoints commit atomically and incrementally.** All N corpus
//!   shard files and N shrunk journals are flipped live as one set by a
//!   single [`manifest`] rename (fsynced through the directory), so a
//!   crash at any byte of a checkpoint recovers either the complete old
//!   set or the complete new one. Shards that cut nothing since the
//!   last checkpoint hard-link their previous corpus file instead of
//!   rewriting it.
//! * **Bad input degrades, never panics.** Defective fixes land in a
//!   typed quarantine; unmatchable stretches split into salvaged
//!   pieces; pathological sessions are shed by a deterministic matcher
//!   budget.
//!
//! The [`fault`] module provides the seeded fault-injection harness
//! (stream mangling + kill-at-byte-offset) that the recovery proptests
//! drive.

pub mod durability;
pub mod engine;
pub mod fault;
pub mod manifest;
pub mod session;
pub mod wal;

pub use durability::DurabilityPolicy;
pub use engine::{
    Ack, IngestConfig, IngestEngine, IngestStats, QuarantineRecord, RecoveryReport, ServeError,
};
pub use fault::{shard_wal_len, truncate_shard_wal, truncate_wal, wal_len, Event, FaultPlan};
pub use manifest::{Manifest, MANIFEST_FILE};
pub use session::{Disposition, QuarantineReason, Session, SessionPolicy};
pub use wal::{Wal, WalError, WalRecord, WalReplay};
// Re-exported so fault-injection call sites (tests, examples, benches)
// need only this crate.
pub use press_store::io::{DiskFault, FaultKind, FaultyIo, IoBackend, RealIo};
