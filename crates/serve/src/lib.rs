//! `press-serve` — fault-tolerant fleet ingest for PRESS.
//!
//! Turns the batch PRESS pipeline (HMM map matching → reformat → hybrid
//! spatial compression + bounded temporal compression) into a streaming
//! engine that many vehicles feed concurrently, hardened for the three
//! ways real fleet ingest fails: dirty input, pathological input, and
//! crashes.
//!
//! # Architecture
//!
//! ```text
//!  push(vehicle, fix)
//!      │  vet: NaN/∞, out-of-order, duplicate, teleport → quarantine
//!      ▼
//!  ingest.<gen>.wal ─── append CRC-framed Point record, ACK offset
//!      │
//!      ▼
//!  Session{vehicle} ── buffer; idle-timeout / size-cap segmentation
//!      │ finalize
//!      ▼
//!  pending ── flush(): parallel salvage-matching + online compression
//!      │ checkpoint
//!      ▼
//!  corpus.<gen>.press + ingest.<gen>.wal ── block store + shrunk WAL,
//!      committed as one pair by an atomic MANIFEST rename
//! ```
//!
//! # Guarantees
//!
//! * **No acked point is lost.** A fix is [`Ack::Accepted`] only after
//!   its WAL frame is written; recovery replays every complete frame
//!   and truncates at most the torn, never-acked tail.
//! * **Recovery is deterministic.** Replay goes through the exact live
//!   ingest path, and everything that influences segmentation (stream
//!   clock, session order, arrival order) is journaled or derived from
//!   the journal — a recovered engine's corpus is byte-identical to a
//!   clean run over the acked prefix.
//! * **Checkpoints commit atomically.** The published corpus and the
//!   shrunk journal are flipped live as one pair by a single
//!   [`manifest`] rename (fsynced through the directory), so a crash at
//!   any byte of a checkpoint recovers either the complete old pair or
//!   the complete new one — never a new corpus with a stale journal,
//!   which would replay trajectories the corpus already holds.
//! * **Bad input degrades, never panics.** Defective fixes land in a
//!   typed quarantine; unmatchable stretches split into salvaged
//!   pieces; pathological sessions are shed by a deterministic matcher
//!   budget.
//!
//! The [`fault`] module provides the seeded fault-injection harness
//! (stream mangling + kill-at-byte-offset) that the recovery proptests
//! drive.

pub mod durability;
pub mod engine;
pub mod fault;
pub mod manifest;
pub mod session;
pub mod wal;

pub use durability::DurabilityPolicy;
pub use engine::{
    Ack, IngestConfig, IngestEngine, IngestStats, QuarantineRecord, RecoveryReport, ServeError,
};
pub use fault::{truncate_wal, wal_len, Event, FaultPlan};
pub use manifest::MANIFEST_FILE;
pub use session::{Disposition, QuarantineReason, Session, SessionPolicy};
pub use wal::{Wal, WalError, WalRecord, WalReplay};
// Re-exported so fault-injection call sites (tests, examples, benches)
// need only this crate.
pub use press_store::io::{DiskFault, FaultKind, FaultyIo, IoBackend, RealIo};
