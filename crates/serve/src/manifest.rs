//! The checkpoint manifest: the single atomic commit point for the
//! corpus + journal pair.
//!
//! A checkpoint replaces **two** artifacts — the published corpus and
//! the rewritten journal — and no sequence of per-file renames can swap
//! both at once. Publishing them independently opens a crash window
//! where a recovered engine sees the *new* corpus next to the *old*
//! journal and replays (and re-compresses) trajectories the corpus
//! already contains.
//!
//! Instead, every checkpoint writes its artifacts under a fresh
//! **generation** number — `corpus.<gen>.press` and `ingest.<gen>.wal`
//! — and then commits the pair with one atomic rename of a tiny
//! `MANIFEST` file naming that generation. Recovery reads the manifest
//! and loads exactly the committed pair; artifacts from any other
//! generation are uncommitted leftovers (a checkpoint that crashed
//! before its rename, or a superseded generation whose cleanup was
//! interrupted) and are garbage-collected. A crash at **any** byte of a
//! checkpoint therefore lands on a complete, consistent generation:
//! the old one if the rename did not happen, the new one if it did.
//!
//! After the rename (and after creating a journal) the parent directory
//! is fsynced so the commit survives power loss, not just process
//! death.
//!
//! # Manifest format
//!
//! 24 bytes, written via temp file + rename so it is always complete:
//!
//! ```text
//! [8B magic "PRESSMFT"][u32 version][u64 generation][u32 crc32 of the first 20 bytes]
//! ```

use press_store::crc32;
use press_store::io::{self as store_io, IoBackend};
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest file name inside the ingest directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Manifest magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"PRESSMFT";
/// Manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;
/// Encoded manifest length in bytes.
pub const MANIFEST_LEN: usize = 24;

/// Corpus artifact name for `gen`.
pub fn corpus_file_name(gen: u64) -> String {
    format!("corpus.{gen}.press")
}

/// Journal artifact name for `gen`.
pub fn wal_file_name(gen: u64) -> String {
    format!("ingest.{gen}.wal")
}

/// Parses a generation-stamped artifact name (`corpus.<gen>.press` or
/// `ingest.<gen>.wal`), returning its generation.
pub fn artifact_generation(name: &str) -> Option<u64> {
    let gen = name
        .strip_prefix("corpus.")
        .and_then(|rest| rest.strip_suffix(".press"))
        .or_else(|| {
            name.strip_prefix("ingest.")
                .and_then(|rest| rest.strip_suffix(".wal"))
        })?;
    gen.parse().ok()
}

/// Fsyncs a directory so renames/creations inside it are durable.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Reads the committed generation, `None` for a directory with no
/// manifest. A present-but-damaged manifest is `InvalidData`, never a
/// silent fresh start.
pub fn read(dir: &Path) -> io::Result<Option<u64>> {
    let bytes = match std::fs::read(dir.join(MANIFEST_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() != MANIFEST_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("manifest is {} bytes, expected {MANIFEST_LEN}", bytes.len()),
        ));
    }
    if bytes[..8] != MANIFEST_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "manifest has bad magic",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != MANIFEST_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported manifest version {version} (this build reads {MANIFEST_VERSION})"),
        ));
    }
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if crc32(&bytes[..20]) != stored_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "manifest checksum mismatch",
        ));
    }
    Ok(Some(u64::from_le_bytes(
        bytes[12..20].try_into().expect("8 bytes"),
    )))
}

/// Atomically commits `gen` as the live generation: temp file + sync +
/// rename + directory fsync. After this returns, recovery will load
/// `corpus.<gen>.press` / `ingest.<gen>.wal` and GC everything else.
/// Every step — including both fsyncs — surfaces its error; a failure
/// anywhere leaves the previous manifest in force.
pub fn commit(dir: &Path, gen: u64) -> io::Result<()> {
    commit_with(&store_io::RealIo, dir, gen)
}

/// [`commit`] through an explicit [`IoBackend`] (fault injection in
/// tests, real filesystem in production).
pub fn commit_with(io: &dyn IoBackend, dir: &Path, gen: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(MANIFEST_LEN);
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&gen.to_le_bytes());
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    store_io::atomic_write_file(io, &dir.join(MANIFEST_FILE), &buf)
}

/// True when the directory holds any generation-stamped artifact.
pub fn has_artifacts(dir: &Path) -> io::Result<bool> {
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        if name
            .to_str()
            .is_some_and(|n| artifact_generation(n).is_some())
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Removes every artifact not belonging to `keep` (uncommitted
/// leftovers of a crashed checkpoint, superseded generations whose
/// cleanup was interrupted) plus any stranded `*.tmp` staging file
/// (atomic writes stage through sibling temp files; one survives only
/// if the writer crashed or faulted mid-stage, and it is inert).
pub fn gc(dir: &Path, keep: u64) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match artifact_generation(name) {
            Some(gen) => gen != keep,
            None => name.ends_with(".tmp"),
        };
        if stale {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// The committed journal path — where a simulated kill must tear. A
/// directory with no manifest resolves to generation 0 (a fresh engine
/// commits generation 0 on first open).
pub fn live_wal_path(dir: &Path) -> io::Result<PathBuf> {
    let gen = read(dir)?.unwrap_or(0);
    Ok(dir.join(wal_file_name(gen)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("press-mft-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn commit_read_roundtrip_and_gc() {
        let dir = tmp_dir("roundtrip");
        assert_eq!(read(&dir).expect("read"), None);
        commit(&dir, 0).expect("commit 0");
        assert_eq!(read(&dir).expect("read"), Some(0));
        commit(&dir, 7).expect("commit 7");
        assert_eq!(read(&dir).expect("read"), Some(7));
        // GC keeps only the committed generation's artifacts.
        for name in [
            corpus_file_name(6),
            wal_file_name(6),
            corpus_file_name(7),
            wal_file_name(7),
            "MANIFEST.tmp".to_string(),
            "unrelated.txt".to_string(),
        ] {
            std::fs::write(dir.join(&name), b"x").expect("write");
        }
        gc(&dir, 7).expect("gc");
        assert!(!dir.join(corpus_file_name(6)).exists());
        assert!(!dir.join(wal_file_name(6)).exists());
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(dir.join(corpus_file_name(7)).exists());
        assert!(dir.join(wal_file_name(7)).exists());
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(
            live_wal_path(&dir).expect("live"),
            dir.join(wal_file_name(7))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_manifest_is_invalid_data_not_a_fresh_start() {
        let dir = tmp_dir("damage");
        commit(&dir, 3).expect("commit");
        let good = std::fs::read(dir.join(MANIFEST_FILE)).expect("read");
        // Flipped generation byte: checksum catches it.
        let mut bad = good.clone();
        bad[12] ^= 0x01;
        std::fs::write(dir.join(MANIFEST_FILE), &bad).expect("write");
        assert!(read(&dir).is_err());
        // Truncated manifest.
        std::fs::write(dir.join(MANIFEST_FILE), &good[..10]).expect("write");
        assert!(read(&dir).is_err());
        // Bad magic.
        let mut bad = good;
        bad[0] = b'X';
        std::fs::write(dir.join(MANIFEST_FILE), &bad).expect("write");
        assert!(read(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_names_parse_and_reject() {
        assert_eq!(artifact_generation("corpus.0.press"), Some(0));
        assert_eq!(artifact_generation("ingest.42.wal"), Some(42));
        assert_eq!(artifact_generation("corpus.press"), None);
        assert_eq!(artifact_generation("ingest.x.wal"), None);
        assert_eq!(artifact_generation("MANIFEST"), None);
        assert_eq!(artifact_generation("corpus.1.press.tmp"), None);
    }
}
