//! The checkpoint manifest: the single atomic commit point for the
//! whole shard set — one corpus file and one journal per ingest shard.
//!
//! A checkpoint replaces **2·N** artifacts — per shard, a published
//! corpus file and a rewritten journal — and no sequence of per-file
//! renames can swap them all at once. Publishing them independently
//! opens a crash window where a recovered engine sees some shards'
//! *new* corpus next to other shards' *old* journals and replays (and
//! re-compresses) trajectories the corpus already contains.
//!
//! Instead, every checkpoint writes its artifacts under a fresh
//! **generation** number — `corpus.<gen>.s<k>.press` and
//! `ingest.<gen>.s<k>.wal` for shard `k` — and then commits the whole
//! set with one atomic rename of a tiny `MANIFEST` file naming that
//! generation and the shard count. Recovery reads the manifest and
//! loads exactly the committed set; artifacts from any other
//! generation are uncommitted leftovers (a checkpoint that crashed
//! before its rename, or a superseded generation whose cleanup was
//! interrupted) and are garbage-collected. A crash at **any** byte of
//! a checkpoint therefore lands on a complete, consistent generation:
//! the old one if the rename did not happen, the new one if it did.
//! Incremental checkpoints exploit the same protocol: a clean shard's
//! corpus file is **hard-linked** from the previous generation's name
//! to the next one's, so the link is just another uncommitted artifact
//! until the rename — and GC by generation number still works, because
//! removing a superseded name only drops one reference to the shared
//! inode.
//!
//! After the rename (and after creating a journal) the parent directory
//! is fsynced so the commit survives power loss, not just process
//! death.
//!
//! # Manifest format
//!
//! Version 2 (this build writes), 28 bytes, written via temp file +
//! rename so it is always complete:
//!
//! ```text
//! [8B magic "PRESSMFT"][u32 version=2][u64 generation][u32 shards][u32 crc32 of the first 24 bytes]
//! ```
//!
//! Version 1 (pre-sharding, 24 bytes, still read) lacks the shard
//! count; its artifacts use the legacy un-sharded names
//! `corpus.<gen>.press` / `ingest.<gen>.wal` and behave as a single
//! shard. The first checkpoint over a legacy directory migrates it to
//! version 2 and sharded names atomically.

use press_store::crc32;
use press_store::io::{self as store_io, IoBackend};
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest file name inside the ingest directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Manifest magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"PRESSMFT";
/// Manifest format version this build writes.
pub const MANIFEST_VERSION: u32 = 2;
/// Encoded length of a version-2 manifest in bytes.
pub const MANIFEST_LEN: usize = 28;
/// Encoded length of a legacy version-1 manifest in bytes.
pub const MANIFEST_LEN_V1: usize = 24;

/// The committed state a manifest names: a generation, and — for
/// version 2 — how many ingest shards its artifact set has. `None`
/// marks a legacy version-1 directory (un-sharded artifact names, one
/// implicit shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// The committed generation number.
    pub generation: u64,
    /// Number of ingest shards, or `None` for a legacy v1 manifest.
    pub shards: Option<u32>,
}

impl Manifest {
    /// The shard count this manifest implies (a legacy manifest is one
    /// shard).
    pub fn shard_count(&self) -> u32 {
        self.shards.unwrap_or(1)
    }
}

/// Legacy (v1, un-sharded) corpus artifact name for `gen`.
pub fn corpus_file_name(gen: u64) -> String {
    format!("corpus.{gen}.press")
}

/// Legacy (v1, un-sharded) journal artifact name for `gen`.
pub fn wal_file_name(gen: u64) -> String {
    format!("ingest.{gen}.wal")
}

/// Corpus artifact name for shard `shard` of `gen`.
pub fn corpus_shard_file_name(gen: u64, shard: u32) -> String {
    format!("corpus.{gen}.s{shard}.press")
}

/// Journal artifact name for shard `shard` of `gen`.
pub fn wal_shard_file_name(gen: u64, shard: u32) -> String {
    format!("ingest.{gen}.s{shard}.wal")
}

/// Parses a generation-stamped artifact name — legacy
/// (`corpus.<gen>.press`, `ingest.<gen>.wal`) or sharded
/// (`corpus.<gen>.s<k>.press`, `ingest.<gen>.s<k>.wal`) — returning
/// its generation and shard (`None` for legacy names).
pub fn artifact_parts(name: &str) -> Option<(u64, Option<u32>)> {
    let rest = name
        .strip_prefix("corpus.")
        .and_then(|rest| rest.strip_suffix(".press"))
        .or_else(|| {
            name.strip_prefix("ingest.")
                .and_then(|rest| rest.strip_suffix(".wal"))
        })?;
    match rest.split_once(".s") {
        Some((gen, shard)) => Some((gen.parse().ok()?, Some(shard.parse().ok()?))),
        None => Some((rest.parse().ok()?, None)),
    }
}

/// The generation of a generation-stamped artifact name (legacy or
/// sharded); see [`artifact_parts`].
pub fn artifact_generation(name: &str) -> Option<u64> {
    artifact_parts(name).map(|(gen, _)| gen)
}

/// Fsyncs a directory so renames/creations inside it are durable.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Reads the committed manifest, `None` for a directory with no
/// manifest. A present-but-damaged manifest is `InvalidData`, never a
/// silent fresh start.
pub fn read(dir: &Path) -> io::Result<Option<Manifest>> {
    let bytes = match std::fs::read(dir.join(MANIFEST_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() != MANIFEST_LEN && bytes.len() != MANIFEST_LEN_V1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "manifest is {} bytes, expected {MANIFEST_LEN} (v2) or {MANIFEST_LEN_V1} (v1)",
                bytes.len()
            ),
        ));
    }
    if bytes[..8] != MANIFEST_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "manifest has bad magic",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body..].try_into().expect("4 bytes"));
    if crc32(&bytes[..body]) != stored_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "manifest checksum mismatch",
        ));
    }
    let generation = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    match version {
        1 if bytes.len() == MANIFEST_LEN_V1 => Ok(Some(Manifest {
            generation,
            shards: None,
        })),
        2 if bytes.len() == MANIFEST_LEN => {
            let shards = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
            if shards == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "manifest names zero shards",
                ));
            }
            Ok(Some(Manifest {
                generation,
                shards: Some(shards),
            }))
        }
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "unsupported manifest version {version} for {} bytes \
                 (this build reads v1 and v{MANIFEST_VERSION})",
                bytes.len()
            ),
        )),
    }
}

/// Atomically commits `gen` with `shards` ingest shards as the live
/// generation: temp file + sync + rename + directory fsync. After this
/// returns, recovery will load `corpus.<gen>.s<k>.press` /
/// `ingest.<gen>.s<k>.wal` for every shard `k` and GC everything else.
/// Every step — including both fsyncs — surfaces its error; a failure
/// anywhere leaves the previous manifest in force.
pub fn commit(dir: &Path, gen: u64, shards: u32) -> io::Result<()> {
    commit_with(&store_io::RealIo, dir, gen, shards)
}

/// [`commit`] through an explicit [`IoBackend`] (fault injection in
/// tests, real filesystem in production).
pub fn commit_with(io: &dyn IoBackend, dir: &Path, gen: u64, shards: u32) -> io::Result<()> {
    assert!(shards > 0, "a manifest must name at least one shard");
    let mut buf = Vec::with_capacity(MANIFEST_LEN);
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&gen.to_le_bytes());
    buf.extend_from_slice(&shards.to_le_bytes());
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    store_io::atomic_write_file(io, &dir.join(MANIFEST_FILE), &buf)
}

/// True when the directory holds any generation-stamped artifact.
pub fn has_artifacts(dir: &Path) -> io::Result<bool> {
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        if name
            .to_str()
            .is_some_and(|n| artifact_generation(n).is_some())
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Removes every artifact not belonging to `keep` (uncommitted
/// leftovers of a crashed checkpoint, superseded generations whose
/// cleanup was interrupted) plus any stranded `*.tmp` staging file
/// (atomic writes stage through sibling temp files; one survives only
/// if the writer crashed or faulted mid-stage, and it is inert).
/// Hard-linked incremental-checkpoint corpora are safe under this
/// rule: removing a superseded generation's name only drops one link
/// to the inode the kept generation still names.
pub fn gc(dir: &Path, keep: u64) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match artifact_generation(name) {
            Some(gen) => gen != keep,
            None => name.ends_with(".tmp"),
        };
        if stale {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// The committed journal path of shard `shard` — where a simulated
/// kill must tear. A directory with no manifest resolves to generation
/// 0 (a fresh engine commits generation 0 on first open); a legacy v1
/// directory resolves shard 0 to its un-sharded journal name.
pub fn live_shard_wal_path(dir: &Path, shard: u32) -> io::Result<PathBuf> {
    let manifest = read(dir)?;
    let gen = manifest.map(|m| m.generation).unwrap_or(0);
    let legacy = manifest.is_some_and(|m| m.shards.is_none());
    if legacy && shard == 0 {
        Ok(dir.join(wal_file_name(gen)))
    } else {
        Ok(dir.join(wal_shard_file_name(gen, shard)))
    }
}

/// [`live_shard_wal_path`] for shard 0 — the whole journal of a
/// single-shard engine.
pub fn live_wal_path(dir: &Path) -> io::Result<PathBuf> {
    live_shard_wal_path(dir, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("press-mft-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn commit_read_roundtrip_and_gc() {
        let dir = tmp_dir("roundtrip");
        assert_eq!(read(&dir).expect("read"), None);
        commit(&dir, 0, 1).expect("commit 0");
        assert_eq!(
            read(&dir).expect("read"),
            Some(Manifest {
                generation: 0,
                shards: Some(1)
            })
        );
        commit(&dir, 7, 3).expect("commit 7");
        assert_eq!(
            read(&dir).expect("read"),
            Some(Manifest {
                generation: 7,
                shards: Some(3)
            })
        );
        // GC keeps only the committed generation's artifacts — legacy
        // and sharded names alike.
        for name in [
            corpus_file_name(6),
            wal_file_name(6),
            corpus_shard_file_name(6, 1),
            wal_shard_file_name(6, 2),
            corpus_shard_file_name(7, 0),
            wal_shard_file_name(7, 0),
            wal_shard_file_name(7, 2),
            "MANIFEST.tmp".to_string(),
            "unrelated.txt".to_string(),
        ] {
            std::fs::write(dir.join(&name), b"x").expect("write");
        }
        gc(&dir, 7).expect("gc");
        assert!(!dir.join(corpus_file_name(6)).exists());
        assert!(!dir.join(wal_file_name(6)).exists());
        assert!(!dir.join(corpus_shard_file_name(6, 1)).exists());
        assert!(!dir.join(wal_shard_file_name(6, 2)).exists());
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(dir.join(corpus_shard_file_name(7, 0)).exists());
        assert!(dir.join(wal_shard_file_name(7, 0)).exists());
        assert!(dir.join(wal_shard_file_name(7, 2)).exists());
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(
            live_wal_path(&dir).expect("live"),
            dir.join(wal_shard_file_name(7, 0))
        );
        assert_eq!(
            live_shard_wal_path(&dir, 2).expect("live"),
            dir.join(wal_shard_file_name(7, 2))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_v1_manifest_reads_as_unsharded() {
        let dir = tmp_dir("legacy");
        // A hand-written v1 manifest: 24 bytes, version 1, gen 5.
        let mut buf = Vec::with_capacity(MANIFEST_LEN_V1);
        buf.extend_from_slice(&MANIFEST_MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&5u64.to_le_bytes());
        buf.extend_from_slice(&crc32(&buf).to_le_bytes());
        std::fs::write(dir.join(MANIFEST_FILE), &buf).expect("write");
        let m = read(&dir).expect("read").expect("present");
        assert_eq!(
            m,
            Manifest {
                generation: 5,
                shards: None
            }
        );
        assert_eq!(m.shard_count(), 1);
        // Shard 0 of a legacy directory is the un-sharded journal.
        assert_eq!(
            live_wal_path(&dir).expect("live"),
            dir.join(wal_file_name(5))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_manifest_is_invalid_data_not_a_fresh_start() {
        let dir = tmp_dir("damage");
        commit(&dir, 3, 2).expect("commit");
        let good = std::fs::read(dir.join(MANIFEST_FILE)).expect("read");
        // Flipped generation byte: checksum catches it.
        let mut bad = good.clone();
        bad[12] ^= 0x01;
        std::fs::write(dir.join(MANIFEST_FILE), &bad).expect("write");
        assert!(read(&dir).is_err());
        // Truncated manifest.
        std::fs::write(dir.join(MANIFEST_FILE), &good[..10]).expect("write");
        assert!(read(&dir).is_err());
        // A v2-length manifest claiming version 1 (and vice versa) is
        // typed, not misparsed.
        let mut bad = good.clone();
        bad[8] = 1;
        let crc = crc32(&bad[..24]).to_le_bytes();
        bad[24..28].copy_from_slice(&crc);
        std::fs::write(dir.join(MANIFEST_FILE), &bad).expect("write");
        assert!(read(&dir).is_err());
        // Zero shards.
        let mut bad = good.clone();
        bad[20..24].copy_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&bad[..24]).to_le_bytes();
        bad[24..28].copy_from_slice(&crc);
        std::fs::write(dir.join(MANIFEST_FILE), &bad).expect("write");
        assert!(read(&dir).is_err());
        // Bad magic.
        let mut bad = good;
        bad[0] = b'X';
        std::fs::write(dir.join(MANIFEST_FILE), &bad).expect("write");
        assert!(read(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_names_parse_and_reject() {
        assert_eq!(artifact_parts("corpus.0.press"), Some((0, None)));
        assert_eq!(artifact_parts("ingest.42.wal"), Some((42, None)));
        assert_eq!(artifact_parts("corpus.7.s2.press"), Some((7, Some(2))));
        assert_eq!(artifact_parts("ingest.0.s11.wal"), Some((0, Some(11))));
        assert_eq!(artifact_generation("corpus.7.s2.press"), Some(7));
        assert_eq!(artifact_parts("corpus.press"), None);
        assert_eq!(artifact_parts("ingest.x.wal"), None);
        assert_eq!(artifact_parts("ingest.1.sx.wal"), None);
        assert_eq!(artifact_parts("MANIFEST"), None);
        assert_eq!(artifact_parts("corpus.1.press.tmp"), None);
        assert_eq!(artifact_parts("corpus.1.s0.press.tmp"), None);
    }
}
