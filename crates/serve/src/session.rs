//! Per-vehicle session state and input hardening.
//!
//! Every incoming fix is vetted against the session's last **accepted**
//! fix before it is journaled: non-finite values, timestamps that do not
//! advance, exact duplicate re-sends, and physically impossible jumps
//! ("teleports") are diverted into a typed quarantine instead of
//! panicking deep inside the matcher or compressor. Because only
//! accepted fixes reach the WAL, replaying the journal through the same
//! validation reproduces the same decisions — quarantine is pure
//! observability and never affects recovery determinism.

use press_matcher::GpsSample;
use std::fmt;

/// Why a fix was refused. Stable, typed reasons so fleet operators can
/// alert on sensor classes rather than string-match log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarantineReason {
    /// A coordinate or timestamp was NaN or infinite.
    NonFinite,
    /// The timestamp does not advance past the last accepted fix.
    OutOfOrder,
    /// Byte-identical re-send of the last accepted fix (seen when a
    /// device retries an ack it never received).
    Duplicate,
    /// Implied speed from the last accepted fix exceeds
    /// [`SessionPolicy::max_speed_m_s`].
    Teleport,
}

impl QuarantineReason {
    /// All reasons, in counter-array order (see [`Session::quarantined`]).
    pub const ALL: [QuarantineReason; 4] = [
        QuarantineReason::NonFinite,
        QuarantineReason::OutOfOrder,
        QuarantineReason::Duplicate,
        QuarantineReason::Teleport,
    ];

    /// Index into per-reason counter arrays.
    pub fn index(self) -> usize {
        match self {
            QuarantineReason::NonFinite => 0,
            QuarantineReason::OutOfOrder => 1,
            QuarantineReason::Duplicate => 2,
            QuarantineReason::Teleport => 3,
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QuarantineReason::NonFinite => "non-finite coordinate or timestamp",
            QuarantineReason::OutOfOrder => "timestamp not after last accepted fix",
            QuarantineReason::Duplicate => "exact duplicate of last accepted fix",
            QuarantineReason::Teleport => "implied speed exceeds policy maximum",
        };
        f.write_str(s)
    }
}

/// Input-hardening policy applied to every fix before it is acked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionPolicy {
    /// Teleport threshold in map units per second; `0.0` disables the
    /// check entirely.
    pub max_speed_m_s: f64,
    /// When true, an exact duplicate of the last accepted fix is
    /// *repaired* by coalescing (counted, acked as [`crate::Ack::Repaired`],
    /// not journaled); when false it is quarantined like any other defect.
    pub coalesce_duplicates: bool,
}

impl Default for SessionPolicy {
    fn default() -> Self {
        SessionPolicy {
            max_speed_m_s: 90.0,
            coalesce_duplicates: true,
        }
    }
}

/// The verdict for one incoming fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disposition {
    /// Journal it, buffer it, ack it.
    Accept,
    /// Harmless duplicate coalesced per policy; ack without journaling.
    Coalesce,
    /// Defective; quarantine and ack the rejection.
    Quarantine(QuarantineReason),
}

/// One vehicle's in-flight state: the samples of the current segment
/// (plus their global arrival numbers, so a checkpoint can rewrite the
/// WAL in original arrival order) and the last accepted fix, which is
/// kept across segment rollovers so ordering and teleport checks span
/// segment boundaries.
#[derive(Debug, Clone)]
pub struct Session {
    /// The vehicle id this session belongs to.
    pub vehicle: u64,
    /// Buffered (accepted) samples of the current segment.
    pub samples: Vec<GpsSample>,
    /// Global arrival sequence number of each buffered sample.
    pub arrivals: Vec<u64>,
    /// Last accepted fix, surviving segment rollover.
    pub last: Option<GpsSample>,
    /// Per-reason quarantine counters (index by [`QuarantineReason::index`]).
    pub quarantined: [u64; 4],
    /// Fixes repaired by coalescing.
    pub repaired: u64,
}

impl Session {
    /// A fresh, empty session for `vehicle`.
    pub fn new(vehicle: u64) -> Self {
        Session {
            vehicle,
            samples: Vec::new(),
            arrivals: Vec::new(),
            last: None,
            quarantined: [0; 4],
            repaired: 0,
        }
    }

    /// Vets `sample` against this session's last accepted fix. Pure:
    /// does not mutate the session (callers apply the verdict so the
    /// journal-then-apply ordering stays explicit).
    pub fn vet(&self, policy: &SessionPolicy, sample: &GpsSample) -> Disposition {
        if !sample.point.x.is_finite() || !sample.point.y.is_finite() || !sample.t.is_finite() {
            return Disposition::Quarantine(QuarantineReason::NonFinite);
        }
        let Some(last) = &self.last else {
            return Disposition::Accept;
        };
        if sample.t <= last.t {
            let exact = sample.point.x == last.point.x
                && sample.point.y == last.point.y
                && sample.t == last.t;
            if exact {
                return if policy.coalesce_duplicates {
                    Disposition::Coalesce
                } else {
                    Disposition::Quarantine(QuarantineReason::Duplicate)
                };
            }
            return Disposition::Quarantine(QuarantineReason::OutOfOrder);
        }
        if policy.max_speed_m_s > 0.0 {
            let dx = sample.point.x - last.point.x;
            let dy = sample.point.y - last.point.y;
            let dist = (dx * dx + dy * dy).sqrt();
            if dist > policy.max_speed_m_s * (sample.t - last.t) {
                return Disposition::Quarantine(QuarantineReason::Teleport);
            }
        }
        Disposition::Accept
    }

    /// Buffers an accepted sample (call only after the WAL append).
    pub fn accept(&mut self, sample: GpsSample, arrival: u64) {
        self.samples.push(sample);
        self.arrivals.push(arrival);
        self.last = Some(sample);
    }

    /// Drains the buffered segment (keeping `last` for cross-segment
    /// checks), returning its samples.
    pub fn take_segment(&mut self) -> Vec<GpsSample> {
        self.arrivals.clear();
        std::mem::take(&mut self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_network::Point;

    fn s(x: f64, y: f64, t: f64) -> GpsSample {
        GpsSample {
            point: Point::new(x, y),
            t,
        }
    }

    #[test]
    fn vet_orders_defect_checks_deterministically() {
        let policy = SessionPolicy::default();
        let mut sess = Session::new(1);
        assert_eq!(sess.vet(&policy, &s(0.0, 0.0, 10.0)), Disposition::Accept);
        sess.accept(s(0.0, 0.0, 10.0), 0);
        // Non-finite wins over everything, even with a last fix present.
        assert_eq!(
            sess.vet(&policy, &s(f64::NAN, 0.0, 11.0)),
            Disposition::Quarantine(QuarantineReason::NonFinite)
        );
        assert_eq!(
            sess.vet(&policy, &s(0.0, f64::INFINITY, 11.0)),
            Disposition::Quarantine(QuarantineReason::NonFinite)
        );
        assert_eq!(
            sess.vet(&policy, &s(0.0, 0.0, f64::NAN)),
            Disposition::Quarantine(QuarantineReason::NonFinite)
        );
        // Exact re-send coalesces; the same timestamp elsewhere is
        // out-of-order.
        assert_eq!(sess.vet(&policy, &s(0.0, 0.0, 10.0)), Disposition::Coalesce);
        assert_eq!(
            sess.vet(&policy, &s(5.0, 0.0, 10.0)),
            Disposition::Quarantine(QuarantineReason::OutOfOrder)
        );
        assert_eq!(
            sess.vet(&policy, &s(0.0, 0.0, 9.0)),
            Disposition::Quarantine(QuarantineReason::OutOfOrder)
        );
        // 1000 units in 1s at max 90/s teleports; a slow fix is fine.
        assert_eq!(
            sess.vet(&policy, &s(1000.0, 0.0, 11.0)),
            Disposition::Quarantine(QuarantineReason::Teleport)
        );
        assert_eq!(sess.vet(&policy, &s(50.0, 0.0, 11.0)), Disposition::Accept);
    }

    #[test]
    fn policy_toggles_change_dispositions() {
        let strict = SessionPolicy {
            max_speed_m_s: 0.0,
            coalesce_duplicates: false,
        };
        let mut sess = Session::new(2);
        sess.accept(s(0.0, 0.0, 10.0), 0);
        // Teleport check disabled: any finite jump is accepted.
        assert_eq!(sess.vet(&strict, &s(1.0e9, 0.0, 10.5)), Disposition::Accept);
        // Duplicates quarantine instead of coalescing.
        assert_eq!(
            sess.vet(&strict, &s(0.0, 0.0, 10.0)),
            Disposition::Quarantine(QuarantineReason::Duplicate)
        );
    }

    #[test]
    fn last_fix_survives_segment_rollover() {
        let policy = SessionPolicy::default();
        let mut sess = Session::new(3);
        sess.accept(s(0.0, 0.0, 10.0), 0);
        sess.accept(s(10.0, 0.0, 11.0), 1);
        let seg = sess.take_segment();
        assert_eq!(seg.len(), 2);
        assert!(sess.samples.is_empty() && sess.arrivals.is_empty());
        // Ordering still enforced against the pre-rollover fix.
        assert_eq!(
            sess.vet(&policy, &s(10.0, 0.0, 11.0)),
            Disposition::Coalesce
        );
        assert_eq!(
            sess.vet(&policy, &s(20.0, 0.0, 10.5)),
            Disposition::Quarantine(QuarantineReason::OutOfOrder)
        );
        assert_eq!(sess.vet(&policy, &s(20.0, 0.0, 12.0)), Disposition::Accept);
    }
}
