//! Crash-safe, append-only write-ahead journal for streaming ingest.
//!
//! # Format
//!
//! A 16-byte header (`PRESSWAL` magic, `u32` version, `u32` reserved)
//! followed by CRC-framed records:
//!
//! ```text
//! [u32 payload len][u32 crc32(payload)][payload]
//! ```
//!
//! Each frame is laid down with a **single** `write_all`, so a crash
//! leaves at worst a *prefix* of the final frame — never interleaved
//! garbage in the middle of the journal.
//!
//! # Durability and recovery contract
//!
//! * A record is **acked** only after its frame's `write_all` returns
//!   (callers needing power-loss durability call [`Wal::sync`]).
//! * [`Wal::open`] replays every complete, CRC-valid frame in order.
//! * A **torn tail** — an incomplete frame at EOF, or a final frame whose
//!   checksum fails — is the signature of a mid-write crash: it is
//!   truncated away and reported ([`WalReplay::torn_bytes`]), never an
//!   error. Only the unacked in-flight record can live there.
//! * A checksum failure (or malformed frame) **with more journal after
//!   it** can only be real corruption of acked data, so it is a typed
//!   [`WalError::Corrupt`] — acked records are never silently dropped.
//!
//! # Disk faults
//!
//! Every write-side operation goes through a
//! [`press_store::IoBackend`] ([`Wal::open_with`]), so `ENOSPC`/`EIO`/
//! short-write/fsync failures are injectable. A failed append journals
//! nothing and returns a typed error — [`WalError::StorageFull`] for
//! out-of-space (persistent; the caller must not retry), transient
//! [`WalError::Io`] otherwise — and any partial frame the failure left
//! is truncated away before the next append ([`Wal::dirty_tail`]).

use press_store::io::{self as store_io, IoBackend};
use press_store::{crc32, ByteReader, ByteWriter};
use std::fmt;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal file magic.
pub const WAL_MAGIC: [u8; 8] = *b"PRESSWAL";
/// Journal format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Header length in bytes (magic + version + reserved).
pub const WAL_HEADER_LEN: u64 = 16;
/// Upper bound on a frame payload; anything larger is corruption, not a
/// record (the largest real record is a few dozen bytes).
pub const MAX_FRAME_LEN: u32 = 64 * 1024;

/// Errors raised by the journal. Torn tails are NOT errors (see the
/// module docs); these are real I/O failures or acked-data corruption.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// Filesystem error, with the underlying message. Treated as
    /// *transient* by the engine's retry policy.
    Io(String),
    /// The device is out of space (`ENOSPC`). *Persistent*: retrying
    /// cannot help until space is freed, so the engine refuses the
    /// write upward as a typed storage-full error instead of retrying.
    StorageFull(String),
    /// The file does not start with [`WAL_MAGIC`].
    BadMagic,
    /// The journal version is not supported by this build.
    UnsupportedVersion { found: u32, supported: u32 },
    /// Acked journal content is damaged: a mid-journal checksum failure,
    /// an impossible frame length, or an undecodable record.
    Corrupt { offset: u64, detail: String },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "journal I/O error: {msg}"),
            WalError::StorageFull(msg) => write!(f, "journal device out of space: {msg}"),
            WalError::BadMagic => write!(f, "not a PRESS ingest journal (bad magic)"),
            WalError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported journal version {found} (this build reads {supported})"
            ),
            WalError::Corrupt { offset, detail } => {
                write!(f, "journal corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        if store_io::is_storage_full(&e) {
            WalError::StorageFull(e.to_string())
        } else {
            WalError::Io(e.to_string())
        }
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, WalError>;

/// One journaled ingest event. `Point` frames are written on the hot
/// path; `Resume`/`Clock` frames exist only in checkpoint-rewritten
/// journals so a replay reconstructs cross-segment session state
/// (last-accepted fix, stream clock) exactly as a clean run would have
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalRecord {
    /// An accepted GPS fix for `vehicle`.
    Point {
        vehicle: u64,
        x: f64,
        y: f64,
        t: f64,
    },
    /// Explicit end-of-trajectory for `vehicle`.
    Finalize { vehicle: u64 },
    /// Explicit end-of-trajectory for every live session.
    FinalizeAll,
    /// (Checkpoint only) re-establish `vehicle`'s session with this
    /// last-accepted fix, without re-ingesting it as a point.
    Resume {
        vehicle: u64,
        x: f64,
        y: f64,
        t: f64,
    },
    /// (Checkpoint only) advance the observed stream clock to `t`.
    Clock { t: f64 },
}

const TAG_POINT: u8 = 1;
const TAG_FINALIZE: u8 = 2;
const TAG_FINALIZE_ALL: u8 = 3;
const TAG_RESUME: u8 = 4;
const TAG_CLOCK: u8 = 5;

impl WalRecord {
    /// Serializes the record payload (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(33);
        match *self {
            WalRecord::Point { vehicle, x, y, t } => {
                w.put_u8(TAG_POINT);
                w.put_u64(vehicle);
                w.put_f64(x);
                w.put_f64(y);
                w.put_f64(t);
            }
            WalRecord::Finalize { vehicle } => {
                w.put_u8(TAG_FINALIZE);
                w.put_u64(vehicle);
            }
            WalRecord::FinalizeAll => w.put_u8(TAG_FINALIZE_ALL),
            WalRecord::Resume { vehicle, x, y, t } => {
                w.put_u8(TAG_RESUME);
                w.put_u64(vehicle);
                w.put_f64(x);
                w.put_f64(y);
                w.put_f64(t);
            }
            WalRecord::Clock { t } => {
                w.put_u8(TAG_CLOCK);
                w.put_f64(t);
            }
        }
        w.into_bytes()
    }

    /// Decodes one record payload; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> std::result::Result<WalRecord, String> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8().map_err(|e| e.to_string())?;
        let rec = match tag {
            TAG_POINT => WalRecord::Point {
                vehicle: r.get_u64().map_err(|e| e.to_string())?,
                x: r.get_f64().map_err(|e| e.to_string())?,
                y: r.get_f64().map_err(|e| e.to_string())?,
                t: r.get_f64().map_err(|e| e.to_string())?,
            },
            TAG_FINALIZE => WalRecord::Finalize {
                vehicle: r.get_u64().map_err(|e| e.to_string())?,
            },
            TAG_FINALIZE_ALL => WalRecord::FinalizeAll,
            TAG_RESUME => WalRecord::Resume {
                vehicle: r.get_u64().map_err(|e| e.to_string())?,
                x: r.get_f64().map_err(|e| e.to_string())?,
                y: r.get_f64().map_err(|e| e.to_string())?,
                t: r.get_f64().map_err(|e| e.to_string())?,
            },
            TAG_CLOCK => WalRecord::Clock {
                t: r.get_f64().map_err(|e| e.to_string())?,
            },
            other => return Err(format!("unknown record tag {other}")),
        };
        r.expect_end("wal record").map_err(|e| e.to_string())?;
        Ok(rec)
    }
}

/// What [`Wal::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalReplay {
    /// Every acked record, in journal order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from the torn tail (0 on a clean shutdown).
    pub torn_bytes: u64,
    /// Journal length after truncation (where appends resume).
    pub valid_len: u64,
    /// True when the journal was absent/empty and was initialized fresh.
    pub fresh: bool,
}

/// The append-only journal handle. One per ingest directory.
#[derive(Debug)]
pub struct Wal {
    io: Arc<dyn IoBackend>,
    file: File,
    path: PathBuf,
    offset: u64,
    /// A failed append may have left a *prefix* of its frame in the
    /// file (short write). Until that tail is truncated back to
    /// `offset`, another append would turn recoverable torn bytes into
    /// mid-journal corruption — so appends first repair, and if repair
    /// itself fails the flag stays set and the next append retries it.
    dirty_tail: bool,
}

impl Wal {
    /// Opens (or creates) the journal at `path`, replaying acked records
    /// and truncating any torn tail. See the module docs for the exact
    /// torn-tail-vs-corruption rule.
    pub fn open(path: &Path) -> Result<(Wal, WalReplay)> {
        Self::open_with(path, store_io::real_io())
    }

    /// [`Wal::open`] through an explicit [`IoBackend`] (fault injection
    /// in tests, real filesystem in production). Reads are always
    /// direct — the fault surface is the write side.
    pub fn open_with(path: &Path, io: Arc<dyn IoBackend>) -> Result<(Wal, WalReplay)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        // Shorter than the header: either a fresh journal or a crash
        // during creation (header prefix). Both re-initialize.
        if (bytes.len() as u64) < WAL_HEADER_LEN {
            let mut file = io.create(path)?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            io.write_all(&mut file, &header)?;
            io.sync_data(&file)?;
            store_io::sync_parent_dir(io.as_ref(), path)?;
            let replay = WalReplay {
                records: Vec::new(),
                torn_bytes: bytes.len() as u64,
                valid_len: WAL_HEADER_LEN,
                fresh: bytes.is_empty(),
            };
            return Ok((
                Wal {
                    io,
                    file,
                    path: path.to_path_buf(),
                    offset: WAL_HEADER_LEN,
                    dirty_tail: false,
                },
                replay,
            ));
        }
        if bytes[..8] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != WAL_VERSION {
            return Err(WalError::UnsupportedVersion {
                found: version,
                supported: WAL_VERSION,
            });
        }
        let mut records = Vec::new();
        let mut off = WAL_HEADER_LEN as usize;
        let mut torn_bytes = 0u64;
        while off < bytes.len() {
            let rem = bytes.len() - off;
            if rem < 8 {
                torn_bytes = rem as u64;
                break;
            }
            let len =
                u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
            let crc = u32::from_le_bytes([
                bytes[off + 4],
                bytes[off + 5],
                bytes[off + 6],
                bytes[off + 7],
            ]);
            if len == 0 || len > MAX_FRAME_LEN {
                // Frames are single-write, so a partial frame is a strict
                // prefix; a *complete* length field this wrong is damage.
                return Err(WalError::Corrupt {
                    offset: off as u64,
                    detail: format!("impossible frame length {len}"),
                });
            }
            let frame_len = 8 + len as usize;
            if rem < frame_len {
                torn_bytes = rem as u64;
                break;
            }
            let payload = &bytes[off + 8..off + frame_len];
            if crc32(payload) != crc {
                if off + frame_len == bytes.len() {
                    // Torn final frame: all bytes present but the write
                    // was interrupted before they were all durable.
                    torn_bytes = frame_len as u64;
                    break;
                }
                return Err(WalError::Corrupt {
                    offset: off as u64,
                    detail: "checksum mismatch mid-journal".into(),
                });
            }
            let rec = WalRecord::decode(payload).map_err(|detail| WalError::Corrupt {
                offset: off as u64,
                detail,
            })?;
            records.push(rec);
            off += frame_len;
        }
        let valid_len = off as u64;
        let mut file = io.open_rw(path)?;
        if torn_bytes > 0 {
            // Same fsync discipline as `atomic_write_file`: truncation
            // durable (data + parent directory) before any new frame
            // can land after it.
            io.set_len(&file, valid_len)?;
            io.sync_data(&file)?;
            store_io::sync_parent_dir(io.as_ref(), path)?;
        }
        store_io::seek_to(&mut file, valid_len)?;
        Ok((
            Wal {
                io,
                file,
                path: path.to_path_buf(),
                offset: valid_len,
                dirty_tail: false,
            },
            WalReplay {
                records,
                torn_bytes,
                valid_len,
                fresh: false,
            },
        ))
    }

    /// Writes a brand-new journal containing `records` at `path`
    /// (overwriting anything there) and syncs it, file and directory.
    /// This is **not** an atomic replacement of a live journal: the
    /// checkpoint protocol writes the new journal under a fresh,
    /// uncommitted generation-stamped name and commits it — together
    /// with the matching corpus — via the manifest rename (see
    /// [`crate::manifest`]).
    pub fn create(path: &Path, records: &[WalRecord]) -> Result<Wal> {
        Self::create_with(path, records, store_io::real_io())
    }

    /// [`Wal::create`] through an explicit [`IoBackend`].
    pub fn create_with(path: &Path, records: &[WalRecord], io: Arc<dyn IoBackend>) -> Result<Wal> {
        let mut buf = Vec::with_capacity(WAL_HEADER_LEN as usize + records.len() * 48);
        buf.extend_from_slice(&WAL_MAGIC);
        buf.extend_from_slice(&WAL_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        for rec in records {
            let payload = rec.encode();
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        let mut file = io.create(path)?;
        io.write_all(&mut file, &buf)?;
        io.sync_data(&file)?;
        store_io::sync_parent_dir(io.as_ref(), path)?;
        Ok(Wal {
            io,
            file,
            path: path.to_path_buf(),
            offset: buf.len() as u64,
            dirty_tail: false,
        })
    }

    /// Appends one record; the returned offset is the journal length with
    /// this frame included — the record is acked once this returns.
    ///
    /// On failure the record is **not** journaled and the error is
    /// typed ([`WalError::StorageFull`] vs transient [`WalError::Io`]).
    /// A failed write may leave a partial frame after the last good
    /// offset; the journal remembers that ([`Wal::dirty_tail`]) and
    /// truncates it away before the next append, so acked frames stay a
    /// clean prefix and a crash in between still recovers (a synced
    /// partial frame is exactly the torn tail [`Wal::open`] discards).
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        if self.dirty_tail {
            self.repair_tail()?;
        }
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = self.io.write_all(&mut self.file, &frame) {
            self.dirty_tail = true;
            return Err(e.into());
        }
        self.offset += frame.len() as u64;
        Ok(self.offset)
    }

    /// Truncates a partial frame left by a failed append back to the
    /// last acked offset and repositions the cursor there.
    ///
    /// The truncation follows the same fsync discipline as
    /// `atomic_write_file` (`set_len` + `sync_data` +
    /// `sync_parent_dir`): until it is durable, a power cut could
    /// resurrect the partial frame *under* freshly appended bytes —
    /// turning a recoverable torn tail into mid-journal corruption. A
    /// failure at any step leaves `dirty_tail` set, so the next append
    /// retries the whole repair.
    fn repair_tail(&mut self) -> Result<()> {
        self.io.set_len(&self.file, self.offset)?;
        self.io.sync_data(&self.file)?;
        store_io::sync_parent_dir(self.io.as_ref(), &self.path)?;
        store_io::seek_to(&mut self.file, self.offset)?;
        self.dirty_tail = false;
        Ok(())
    }

    /// True when a failed append left partial bytes that have not been
    /// repaired yet (the next append will retry the repair first).
    pub fn dirty_tail(&self) -> bool {
        self.dirty_tail
    }

    /// Flushes journal bytes to stable storage (fsync).
    pub fn sync(&mut self) -> Result<()> {
        self.io.sync_data(&self.file)?;
        Ok(())
    }

    /// Current journal length (the last returned ack offset).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("press-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Clock { t: 12.5 },
            WalRecord::Resume {
                vehicle: 9,
                x: 1.0,
                y: -2.0,
                t: 3.5,
            },
            WalRecord::Point {
                vehicle: 1,
                x: 10.0,
                y: 20.0,
                t: 30.0,
            },
            WalRecord::Point {
                vehicle: 2,
                x: -0.5,
                y: 7.25,
                t: 31.0,
            },
            WalRecord::Finalize { vehicle: 1 },
            WalRecord::FinalizeAll,
        ]
    }

    #[test]
    fn roundtrips_all_record_types() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("ingest.wal");
        let recs = sample_records();
        {
            let (mut wal, replay) = Wal::open(&path).expect("create");
            assert!(replay.fresh);
            assert!(replay.records.is_empty());
            let mut last = WAL_HEADER_LEN;
            for r in &recs {
                let off = wal.append(r).expect("append");
                assert!(off > last, "offsets strictly increase");
                last = off;
            }
            wal.sync().expect("sync");
        }
        let (wal, replay) = Wal::open(&path).expect("reopen");
        assert!(!replay.fresh);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records, recs);
        assert_eq!(wal.offset(), replay.valid_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_offset_keeps_exactly_the_complete_frames() {
        let dir = tmp_dir("trunc");
        let path = dir.join("ingest.wal");
        let recs = sample_records();
        let mut frame_ends = vec![WAL_HEADER_LEN];
        {
            let (mut wal, _) = Wal::open(&path).expect("create");
            for r in &recs {
                frame_ends.push(wal.append(r).expect("append"));
            }
        }
        let full = std::fs::read(&path).expect("read");
        for cut in 0..=full.len() {
            let cut_path = dir.join("cut.wal");
            std::fs::write(&cut_path, &full[..cut]).expect("write");
            let (_, replay) = Wal::open(&cut_path).expect("torn tails are not errors");
            // Acked prefix: records whose frame end fits inside the cut.
            let expect: Vec<WalRecord> = recs
                .iter()
                .zip(&frame_ends[1..])
                .filter(|(_, &end)| end <= cut as u64)
                .map(|(r, _)| *r)
                .collect();
            assert_eq!(replay.records, expect, "cut at byte {cut}");
            // The torn tail was physically truncated away.
            let after = std::fs::metadata(&cut_path).expect("meta").len();
            assert_eq!(after, replay.valid_len, "cut at byte {cut}");
            assert!(replay.valid_len >= WAL_HEADER_LEN);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_journal_corruption_is_a_typed_error_not_data_loss() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("ingest.wal");
        {
            let (mut wal, _) = Wal::open(&path).expect("create");
            for r in sample_records() {
                wal.append(&r).expect("append");
            }
        }
        let full = std::fs::read(&path).expect("read");
        // Flip one payload byte of the FIRST frame: a checksum failure
        // with more journal after it must refuse to open.
        let mut bad = full.clone();
        bad[WAL_HEADER_LEN as usize + 8] ^= 0x01;
        std::fs::write(&path, &bad).expect("write");
        assert!(matches!(Wal::open(&path), Err(WalError::Corrupt { .. })));
        // The same flip on the LAST frame is a torn tail: recovered.
        let mut torn = full.clone();
        let n = torn.len();
        torn[n - 1] ^= 0x01;
        std::fs::write(&path, &torn).expect("write");
        let (_, replay) = Wal::open(&path).expect("final-frame damage is torn");
        assert_eq!(replay.records.len(), sample_records().len() - 1);
        assert!(replay.torn_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let dir = tmp_dir("magic");
        let path = dir.join("ingest.wal");
        {
            let (mut wal, _) = Wal::open(&path).expect("create");
            wal.append(&WalRecord::FinalizeAll).expect("append");
        }
        let good = std::fs::read(&path).expect("read");
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).expect("write");
        assert_eq!(Wal::open(&path).unwrap_err(), WalError::BadMagic);
        let mut bad = good.clone();
        bad[8] = 99;
        std::fs::write(&path, &bad).expect("write");
        assert_eq!(
            Wal::open(&path).unwrap_err(),
            WalError::UnsupportedVersion {
                found: 99,
                supported: WAL_VERSION
            }
        );
        // An impossible frame length mid-journal is Corrupt.
        let mut bad = good;
        bad[WAL_HEADER_LEN as usize] = 0xFF;
        bad[WAL_HEADER_LEN as usize + 1] = 0xFF;
        bad[WAL_HEADER_LEN as usize + 2] = 0xFF;
        std::fs::write(&path, &bad).expect("write");
        assert!(matches!(Wal::open(&path), Err(WalError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_writes_a_reopenable_journal_and_appends_continue() {
        let dir = tmp_dir("create");
        let path = dir.join("ingest.1.wal");
        let kept = vec![
            WalRecord::Clock { t: 99.0 },
            WalRecord::Point {
                vehicle: 7,
                x: 0.0,
                y: 0.0,
                t: 98.0,
            },
        ];
        let mut wal = Wal::create(&path, &kept).expect("create");
        let post = wal
            .append(&WalRecord::Finalize { vehicle: 7 })
            .expect("append");
        assert!(post > WAL_HEADER_LEN);
        let (_, replay) = Wal::open(&path).expect("reopen");
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[..2], kept[..]);
        assert_eq!(replay.records[2], WalRecord::Finalize { vehicle: 7 });
        // Overwrites whatever was there before.
        let wal2 = Wal::create(&path, &kept[..1]).expect("recreate");
        drop(wal2);
        let (_, replay) = Wal::open(&path).expect("reopen");
        assert_eq!(replay.records, kept[..1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_is_typed_and_partial_frame_is_repaired() {
        use press_store::io::{DiskFault, FaultKind, FaultyIo};
        let dir = tmp_dir("fault-append");
        let path = dir.join("ingest.wal");
        let io = FaultyIo::new(Vec::new());
        let (mut wal, _) = Wal::open_with(&path, io.clone()).expect("create");
        let ok_off = wal
            .append(&WalRecord::Point {
                vehicle: 1,
                x: 1.0,
                y: 2.0,
                t: 3.0,
            })
            .expect("clean append");
        // A short write leaves a partial frame and surfaces StorageFull.
        io.arm(DiskFault {
            at_op: io.ops(),
            kind: FaultKind::ShortWrite,
            sticky: false,
        });
        let err = wal
            .append(&WalRecord::Finalize { vehicle: 1 })
            .expect_err("short write");
        assert!(matches!(err, WalError::StorageFull(_)));
        assert!(wal.dirty_tail());
        assert_eq!(wal.offset(), ok_off, "failed append acked nothing");
        assert!(
            std::fs::metadata(&path).expect("meta").len() > ok_off,
            "partial frame bytes really landed"
        );
        // The next append repairs the tail first; the journal replays to
        // exactly the acked records.
        let off2 = wal
            .append(&WalRecord::Finalize { vehicle: 1 })
            .expect("repaired append");
        assert!(off2 > ok_off);
        assert!(!wal.dirty_tail());
        drop(wal);
        let (_, replay) = Wal::open(&path).expect("reopen");
        assert_eq!(replay.torn_bytes, 0, "repair removed the partial frame");
        assert_eq!(
            replay.records,
            vec![
                WalRecord::Point {
                    vehicle: 1,
                    x: 1.0,
                    y: 2.0,
                    t: 3.0
                },
                WalRecord::Finalize { vehicle: 1 },
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_repair_sync_keeps_the_tail_dirty_until_it_succeeds() {
        use press_store::io::{DiskFault, FaultKind, FaultyIo};
        let dir = tmp_dir("fault-repair-sync");
        let path = dir.join("ingest.wal");
        let io = FaultyIo::new(Vec::new());
        let (mut wal, _) = Wal::open_with(&path, io.clone()).expect("create");
        let ok_off = wal
            .append(&WalRecord::Point {
                vehicle: 1,
                x: 1.0,
                y: 2.0,
                t: 3.0,
            })
            .expect("clean append");
        io.arm(DiskFault {
            at_op: io.ops(),
            kind: FaultKind::ShortWrite,
            sticky: false,
        });
        assert!(wal.append(&WalRecord::FinalizeAll).is_err());
        assert!(wal.dirty_tail());
        // Fail exactly the repair's fsync: the next append truncates
        // (set_len passes) but the sync trips, so the repair must not
        // be considered done — the tail stays dirty and nothing acks.
        io.arm(DiskFault {
            at_op: io.ops(),
            kind: FaultKind::SyncFail,
            sticky: false,
        });
        let err = wal
            .append(&WalRecord::FinalizeAll)
            .expect_err("repair sync");
        assert!(matches!(err, WalError::Io(_)));
        assert!(wal.dirty_tail(), "unsynced repair keeps the flag");
        assert_eq!(wal.offset(), ok_off);
        // With the fault disarmed the full repair (truncate + fsync +
        // dir fsync) completes and the append lands.
        let off2 = wal.append(&WalRecord::FinalizeAll).expect("repaired");
        assert!(off2 > ok_off);
        assert!(!wal.dirty_tail());
        drop(wal);
        let (_, replay) = Wal::open(&path).expect("reopen");
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(
            replay.records,
            vec![
                WalRecord::Point {
                    vehicle: 1,
                    x: 1.0,
                    y: 2.0,
                    t: 3.0
                },
                WalRecord::FinalizeAll,
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_eio_on_append_and_sync_is_typed_io() {
        use press_store::io::{DiskFault, FaultKind, FaultyIo};
        let dir = tmp_dir("fault-eio");
        let path = dir.join("ingest.wal");
        let io = FaultyIo::new(Vec::new());
        let (mut wal, _) = Wal::open_with(&path, io.clone()).expect("create");
        io.arm(DiskFault {
            at_op: io.ops(),
            kind: FaultKind::Eio,
            sticky: false,
        });
        assert!(matches!(
            wal.append(&WalRecord::FinalizeAll),
            Err(WalError::Io(_))
        ));
        // EIO writes nothing, but the journal still repairs defensively;
        // the retry succeeds and recovery sees exactly one record.
        wal.append(&WalRecord::FinalizeAll).expect("retry");
        io.arm(DiskFault {
            at_op: io.ops(),
            kind: FaultKind::SyncFail,
            sticky: false,
        });
        assert!(matches!(wal.sync(), Err(WalError::Io(_))));
        wal.sync().expect("sync retry");
        drop(wal);
        let (_, replay) = Wal::open(&path).expect("reopen");
        assert_eq!(replay.records, vec![WalRecord::FinalizeAll]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
