//! Checkpoint ↔ synopsis-index integration tests.
//!
//! A checkpointed corpus must carry the persisted `index` section, a
//! pre-index corpus (section stripped) must still recover with identical
//! answers, and a logically corrupted index must surface as a typed
//! error at recovery — never a wrong answer.

use press_core::query::QueryEngine;
use press_core::store::TrajectoryStore;
use press_core::{BtcBounds, Press, PressConfig, PressError, QueryBatch};
use press_matcher::{GpsSample, MapMatcher, MatcherConfig};
use press_network::{grid_network, GridConfig, Mbr, RoadNetwork, SpBackend};
use press_serve::{Ack, Event, IngestConfig, IngestEngine, ServeError, SessionPolicy};
use press_store::{IndexEntry, StoreError, StoreFile, StoreWriter, SynopsisIndex};
use press_workload::{query_mix, QueryMixConfig, Workload, WorkloadConfig};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

struct Fleet {
    #[allow(dead_code)]
    net: Arc<RoadNetwork>,
    matcher: Arc<MapMatcher>,
    press: Press,
    events: Vec<Event>,
}

fn fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(|| {
        let net = Arc::new(grid_network(&GridConfig {
            nx: 8,
            ny: 8,
            spacing: 150.0,
            weight_jitter: 0.12,
            removal_prob: 0.0,
            seed: 33,
        }));
        let sp = SpBackend::Dense.build(net.clone());
        let workload = Workload::generate(
            net.clone(),
            sp.clone(),
            WorkloadConfig {
                num_trajectories: 24,
                seed: 33,
                ..WorkloadConfig::default()
            },
        );
        let (train, eval) = workload.split(0.5);
        let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
        let press = Press::train(
            sp,
            &training_paths,
            PressConfig {
                bounds: BtcBounds::new(45.0, 15.0),
                ..PressConfig::default()
            },
        )
        .expect("training");
        let matcher = Arc::new(MapMatcher::new(net.clone(), MatcherConfig::default()));
        let mut events: Vec<Event> = Vec::new();
        for (v, record) in eval.iter().take(8).enumerate() {
            let trace = record.gps_trace(&net, 8.0, 4.0);
            for p in &trace.points {
                events.push((
                    v as u64,
                    GpsSample {
                        point: p.point,
                        t: p.t + v as f64 * 41.0,
                    },
                ));
            }
        }
        events.sort_by(|a, b| a.1.t.partial_cmp(&b.1.t).expect("finite timestamps"));
        assert!(events.len() > 100, "fixture stream too small");
        Fleet {
            net,
            matcher,
            press,
            events,
        }
    })
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("press-ckpt-index-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IngestConfig {
    IngestConfig {
        policy: SessionPolicy::default(),
        idle_timeout: 0.0,
        max_session_points: 0,
        block_size: 3,
        threads: 2,
        max_lattice_work: 0,
        max_salvage_splits: 8,
        quarantine_log_cap: 256,
        ..IngestConfig::default()
    }
}

/// Ingests the fixture stream and checkpoints; returns the engine.
fn checkpointed(dir: &std::path::Path) -> IngestEngine {
    let f = fleet();
    let press = f.press.reconfigured(f.press.config());
    let mut engine =
        IngestEngine::open(dir, Arc::clone(&f.matcher), press, config()).expect("open");
    for &(v, s) in &f.events {
        let _ack: Ack = engine.push(v, s).expect("push");
    }
    engine.finalize_all().expect("finalize_all");
    engine.flush().expect("flush");
    engine.checkpoint().expect("checkpoint");
    engine
}

/// Rewrites the container at `path`, applying `f` to choose each
/// section's replacement payload (`None` drops the section).
fn rewrite_corpus(path: &std::path::Path, f: impl Fn(&str, &[u8]) -> Option<Vec<u8>>) {
    let bytes = std::fs::read(path).expect("read corpus");
    let file = StoreFile::from_bytes(bytes).expect("parse corpus");
    let mut w = StoreWriter::new(file.kind());
    for name in file.section_names() {
        if let Some(payload) = f(name, file.section(name).expect("section")) {
            w.section(name, payload);
        }
    }
    std::fs::write(path, w.to_bytes()).expect("rewrite corpus");
}

/// Answers a mixed query batch against the corpus at `path`.
fn answers(path: &std::path::Path, press: &Press) -> Vec<press_core::StoreAnswer> {
    let store = TrajectoryStore::open(path).expect("open store");
    let engine = QueryEngine::new(press.model());
    let mix = query_mix(&QueryMixConfig {
        num_queries: 200,
        seed: 11,
        bbox: Mbr::new(0.0, 0.0, 1200.0, 1200.0),
        t_min: 0.0,
        t_max: 2000.0,
        window_fraction: 0.1,
        num_trajectories: store.len(),
        ..QueryMixConfig::default()
    });
    QueryBatch::from_queries(mix)
        .run(&store, &engine, 3)
        .expect("batch")
}

#[test]
fn checkpoint_publishes_the_index_section() {
    let dir = test_dir("publish");
    let engine = checkpointed(&dir);
    let bytes = std::fs::read(engine.corpus_path()).expect("corpus bytes");
    let file = StoreFile::from_bytes(bytes).expect("parse");
    assert!(
        file.has_section("index"),
        "checkpointed corpus must persist the synopsis index"
    );
    let store = TrajectoryStore::open(&engine.corpus_path()).expect("open");
    assert!(!store.is_empty(), "fixture produced an empty corpus");
    assert_eq!(
        store.synopsis_index().num_leaves(),
        SynopsisIndex::from_section_bytes(file.section("index").expect("index section"))
            .expect("decode index")
            .num_leaves()
    );
}

#[test]
fn pre_index_corpus_recovers_with_identical_answers() {
    let f = fleet();
    let dir = test_dir("preindex");
    let engine = checkpointed(&dir);
    let corpus = engine.corpus_path();
    let generation = engine.generation();
    drop(engine);
    let press = f.press.reconfigured(f.press.config());
    let expected = answers(&corpus, &press);

    // Strip the index section — the file a pre-index writer produced.
    rewrite_corpus(&corpus, |name, payload| {
        (name != "index").then(|| payload.to_vec())
    });
    let file = StoreFile::from_bytes(std::fs::read(&corpus).expect("read")).expect("parse");
    assert!(!file.has_section("index"));

    // Old-format corpus answers identically (index rebuilt in memory)...
    assert_eq!(answers(&corpus, &press), expected);

    // ...and full engine recovery accepts it.
    let reopened = IngestEngine::open(
        &dir,
        Arc::clone(&f.matcher),
        f.press.reconfigured(f.press.config()),
        config(),
    )
    .expect("recovery over a pre-index corpus");
    assert_eq!(reopened.generation(), generation);
}

#[test]
fn corrupted_index_is_a_typed_error_at_recovery() {
    let f = fleet();
    let dir = test_dir("corrupt");
    let engine = checkpointed(&dir);
    let corpus = engine.corpus_path();
    drop(engine);

    // CRC-valid but logically wrong index: one leaf too few.
    rewrite_corpus(&corpus, |name, payload| {
        if name == "index" {
            let idx = SynopsisIndex::from_section_bytes(payload).expect("decode");
            let leaves: Vec<IndexEntry> = (0..idx.num_leaves().saturating_sub(1))
                .map(|i| *idx.leaf(i))
                .collect();
            Some(SynopsisIndex::build(leaves, idx.branching()).to_section_bytes())
        } else {
            Some(payload.to_vec())
        }
    });

    let err = TrajectoryStore::open(&corpus).expect_err("wrong index must not load");
    assert!(
        matches!(err, PressError::Store(StoreError::Corrupt(_))),
        "expected typed Corrupt error, got {err:?}"
    );
    let serve_err = match IngestEngine::open(
        &dir,
        Arc::clone(&f.matcher),
        f.press.reconfigured(f.press.config()),
        config(),
    ) {
        Ok(_) => panic!("recovery must reject a corrupted index"),
        Err(e) => e,
    };
    assert!(
        matches!(
            serve_err,
            ServeError::Press(PressError::Store(StoreError::Corrupt(_)))
        ),
        "expected typed Corrupt error, got {serve_err:?}"
    );
}
