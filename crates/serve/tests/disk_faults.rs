//! Disk-fault injection tests for the ingest engine.
//!
//! The central matrix: an arbitrary seeded disk fault (ENOSPC / EIO /
//! short write / fsync failure, one-shot or sticky, at any operation
//! index) composed with a kill at any legitimate power-loss offset.
//! Under every combination the engine must fail *typed* — never panic,
//! never silently drop — and the recovered corpus must be
//! byte-identical to a clean run over exactly the journaled-surviving
//! subsequence of the stream.
//!
//! Also here: the memory-budget/eviction determinism proptest (eviction
//! order and corpus bytes identical across flush-worker counts, and
//! reproduced exactly by journal replay) and the fleets-larger-than-
//! memory budget test.

use press_core::{BtcBounds, Press, PressConfig};
use press_matcher::{GpsSample, MapMatcher, MatcherConfig};
use press_network::{grid_network, GridConfig, SpBackend};
use press_serve::wal::WAL_HEADER_LEN;
use press_serve::{
    shard_wal_len, truncate_shard_wal, truncate_wal, wal_len, DiskFault, DurabilityPolicy, Event,
    FaultKind, FaultyIo, IngestConfig, IngestEngine, ServeError, SessionPolicy,
};
use press_workload::{Workload, WorkloadConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Shared fixture: a trained compressor, a matcher, and a clean
/// interleaved multi-vehicle event stream (same shape as the
/// `ingest_recovery` fixture).
struct Fleet {
    matcher: Arc<MapMatcher>,
    press: Press,
    events: Vec<Event>,
}

impl Fleet {
    fn press(&self) -> Press {
        self.press.reconfigured(self.press.config())
    }
}

fn fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(|| {
        let net = Arc::new(grid_network(&GridConfig {
            nx: 8,
            ny: 8,
            spacing: 150.0,
            weight_jitter: 0.12,
            removal_prob: 0.0,
            seed: 21,
        }));
        let sp = SpBackend::Dense.build(net.clone());
        let workload = Workload::generate(
            net.clone(),
            sp.clone(),
            WorkloadConfig {
                num_trajectories: 30,
                seed: 21,
                ..WorkloadConfig::default()
            },
        );
        let (train, eval) = workload.split(0.5);
        let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
        let press = Press::train(
            sp,
            &training_paths,
            PressConfig {
                bounds: BtcBounds::new(45.0, 15.0),
                ..PressConfig::default()
            },
        )
        .expect("training");
        let matcher = Arc::new(MapMatcher::new(net.clone(), MatcherConfig::default()));
        let mut events: Vec<Event> = Vec::new();
        for (v, record) in eval.iter().take(10).enumerate() {
            let trace = record.gps_trace(&net, 8.0, 4.0);
            for p in &trace.points {
                events.push((
                    v as u64,
                    GpsSample {
                        point: p.point,
                        t: p.t + v as f64 * 37.0,
                    },
                ));
            }
        }
        events.sort_by(|a, b| a.1.t.partial_cmp(&b.1.t).expect("finite timestamps"));
        assert!(events.len() > 100, "fixture stream too small");
        Fleet {
            matcher,
            press,
            events,
        }
    })
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("press-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IngestConfig {
    IngestConfig {
        policy: SessionPolicy::default(),
        idle_timeout: 400.0,
        max_session_points: 24,
        block_size: 3,
        threads: 2,
        max_lattice_work: 0,
        max_salvage_splits: 8,
        quarantine_log_cap: 256,
        // Group commit with small thresholds so both batched syncs and
        // long journaled-not-durable windows occur inside the fixture
        // stream; zero backoff keeps retry loops instant.
        durability: DurabilityPolicy {
            sync_bytes: 2048,
            sync_interval: 120.0,
            max_retries: 2,
            retry_backoff_ms: 0,
        },
        ..IngestConfig::default()
    }
}

/// Finishes an engine (finalize + flush + checkpoint) and returns the
/// published corpus bytes.
fn finish(engine: &mut IngestEngine) -> Vec<u8> {
    engine.finalize_all().expect("finalize_all");
    engine.flush().expect("flush");
    engine.checkpoint().expect("checkpoint");
    std::fs::read(engine.corpus_path()).expect("corpus bytes")
}

/// Pushes `events` through a fresh fault-free engine and finishes it,
/// returning the corpus bytes. The reference side of every
/// byte-identity assertion.
fn reference_corpus(tag: &str, cfg: IngestConfig, events: &[Event]) -> Vec<u8> {
    let f = fleet();
    let dir = test_dir(tag);
    let mut engine =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open reference");
    for &(v, s) in events {
        engine.push(v, s).expect("reference push");
    }
    let corpus = finish(&mut engine);
    let _ = std::fs::remove_dir_all(&dir);
    corpus
}

/// One cell of the fault matrix: ingest the fixture stream through a
/// `FaultyIo` armed with `fault` (op index relative to post-open state),
/// optionally attempting a mid-run checkpoint, then kill at a
/// legitimate power-loss offset (`kill_frac` across
/// `[durable_offset, wal_len]`), recover on the real filesystem, and
/// check the byte-identity contract over the journaled-surviving
/// subsequence.
fn run_fault_cell(
    tag: &str,
    delta: u64,
    kind: FaultKind,
    sticky: bool,
    kill_frac: f64,
    mid_checkpoint: bool,
) {
    let f = fleet();
    let cfg = config();
    let dir = test_dir(&format!("cell-{tag}"));
    let faulty = FaultyIo::new(Vec::new());
    let mut engine =
        IngestEngine::open_with_io(&dir, Arc::clone(&f.matcher), f.press(), cfg, faulty.clone())
            .expect("open with clean io");
    faulty.arm(DiskFault {
        at_op: faulty.ops() + delta,
        kind,
        sticky,
    });

    // `journaled` records (event index, ack offset) for every push the
    // engine applied; errored pushes leave no trace at all and must be
    // absent from the reference feed.
    let split = f.events.len() / 2;
    let mut journaled: Vec<(usize, u64)> = Vec::new();
    let mut safe_count = 0usize;
    for (i, &(v, s)) in f.events.iter().enumerate() {
        if mid_checkpoint && i == split {
            match engine.checkpoint() {
                // All pre-checkpoint journaled events are now safe for
                // ANY later cut: published corpus + synced rewritten
                // journal.
                Ok(_) => safe_count = journaled.len(),
                // A faulted checkpoint is typed and leaves the old
                // generation fully live; the engine keeps ingesting.
                Err(e) => {
                    assert!(
                        !e.to_string().is_empty(),
                        "checkpoint fault must carry a message"
                    );
                }
            }
        }
        match engine.push(v, s) {
            Ok(ack) => {
                if let Some(offset) = ack.offset() {
                    journaled.push((i, offset));
                }
            }
            Err(ServeError::StorageFull(_)) | Err(ServeError::Backpressure { .. }) => {}
            Err(other) => panic!("push surfaced an untyped fault: {other}"),
        }
    }
    let stats = engine.stats();
    if faulty.injected() > 0 && journaled.len() < f.events.len() {
        assert!(
            stats.storage_full_rejections
                + stats.backpressure_rejections
                + stats.io_retries
                + stats.sync_failures
                > 0,
            "an injected fault that cost events must show up in the counters"
        );
    }
    let durable = engine.durable_offset();
    drop(engine); // crash with the fault still armed

    // Power loss can only lose bytes the engine never fsynced: any cut
    // in [durable_offset, file length] is a legitimate crash state
    // (the tail past wal_offset() is a torn frame a faulted append left
    // behind — recovery must shrug it off too).
    let len = wal_len(&dir).expect("wal len");
    let lo = durable.max(WAL_HEADER_LEN);
    assert!(len >= lo, "durable watermark cannot exceed the journal");
    let cut = lo + ((len - lo) as f64 * kill_frac).round() as u64;
    truncate_wal(&dir, cut).expect("truncate");

    let mut recovered = IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg)
        .expect("recovery must succeed on the real filesystem");
    let corpus_a = finish(&mut recovered);

    // Survivors: everything journaled before a successful checkpoint,
    // plus later frames that fit under the cut (offsets are monotonic
    // per journal generation).
    let surviving: Vec<Event> = journaled
        .iter()
        .enumerate()
        .filter(|&(k, &(_, off))| k < safe_count || off <= cut)
        .map(|(_, &(idx, _))| f.events[idx])
        .collect();
    let corpus_b = reference_corpus(&format!("cell-ref-{tag}"), cfg, &surviving);
    assert_eq!(
        corpus_a, corpus_b,
        "fault {kind:?} delta {delta} sticky {sticky} cut {cut}: recovered corpus \
         must be byte-identical to a clean run over the surviving events"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fault matrix: any fault kind at any operation index,
    /// one-shot or sticky, composed with a kill at any legitimate
    /// power-loss offset, with and without a mid-run checkpoint in the
    /// fault window.
    #[test]
    fn any_disk_fault_plus_kill_preserves_the_acked_prefix(
        delta in 0u64..160,
        kind_idx in 0usize..4,
        sticky in any::<bool>(),
        kill_frac in 0.0f64..=1.0,
        mid_checkpoint in any::<bool>(),
    ) {
        let kind = FaultKind::ALL[kind_idx];
        run_fault_cell(
            &format!("{delta}-{kind_idx}-{sticky}-{mid_checkpoint}"),
            delta,
            kind,
            sticky,
            kill_frac,
            mid_checkpoint,
        );
    }
}

/// Config for the eviction tests: a memory budget small enough that the
/// ten staggered fixture vehicles overflow it (when `trigger`), across
/// a configurable flush-worker count.
fn eviction_cfg(threads: usize, trigger: bool) -> IngestConfig {
    IngestConfig {
        threads,
        max_buffered_points: if trigger { 48 } else { 0 },
        max_sessions: if trigger { 4 } else { 0 },
        ..config()
    }
}

/// Baseline (eviction order, corpus bytes) computed once per budget
/// flavor with a single flush worker; every other worker count must
/// reproduce both exactly.
fn eviction_baseline(trigger: bool) -> &'static (Vec<u64>, Vec<u8>) {
    static BASE: [OnceLock<(Vec<u64>, Vec<u8>)>; 2] = [OnceLock::new(), OnceLock::new()];
    BASE[usize::from(trigger)].get_or_init(|| {
        let f = fleet();
        let dir = test_dir(&format!("evict-base-{trigger}"));
        let mut engine = IngestEngine::open(
            &dir,
            Arc::clone(&f.matcher),
            f.press(),
            eviction_cfg(1, trigger),
        )
        .expect("open baseline");
        for &(v, s) in &f.events {
            engine.push(v, s).expect("push");
        }
        let log: Vec<u64> = engine.eviction_log().iter().copied().collect();
        let corpus = finish(&mut engine);
        let _ = std::fs::remove_dir_all(&dir);
        (log, corpus)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Eviction is deterministic and invisible: for any flush-worker
    /// count, a budgeted run evicts the same sessions in the same order
    /// as the single-worker baseline, journal replay after a crash
    /// reproduces that order exactly, and the recovered corpus is
    /// byte-identical to the baseline corpus.
    #[test]
    fn eviction_order_and_corpus_are_deterministic(
        threads_idx in 0usize..4,
        trigger in any::<bool>(),
    ) {
        let threads = [1usize, 2, 3, 7][threads_idx];
        let f = fleet();
        let cfg = eviction_cfg(threads, trigger);
        let dir = test_dir(&format!("evict-{threads}-{trigger}"));
        let mut engine =
            IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
        for &(v, s) in &f.events {
            engine.push(v, s).expect("push");
        }
        let log_live: Vec<u64> = engine.eviction_log().iter().copied().collect();
        prop_assert_eq!(
            log_live.is_empty(),
            !trigger,
            "budget {} must {}trigger eviction",
            trigger,
            if trigger { "" } else { "not " }
        );
        drop(engine); // crash: no finalize, no checkpoint

        let mut recovered =
            IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
        let log_replayed: Vec<u64> = recovered.eviction_log().iter().copied().collect();
        prop_assert_eq!(
            &log_replayed,
            &log_live,
            "journal replay must reproduce the eviction order exactly"
        );
        let corpus = finish(&mut recovered);
        let (base_log, base_corpus) = eviction_baseline(trigger);
        prop_assert_eq!(
            &log_live,
            base_log,
            "eviction order must not depend on the flush-worker count"
        );
        prop_assert_eq!(
            &corpus,
            base_corpus,
            "corpus bytes must not depend on the flush-worker count or the crash"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A fleet several times larger than the session budget: memory stays
/// bounded after every single push, evictions actually happen, replay
/// reproduces them, and the published corpus is byte-identical to an
/// uninterrupted run — eviction is invisible in the corpus bytes.
#[test]
fn fleet_larger_than_memory_stays_bounded_and_recovers() {
    let f = fleet();
    const REPLICAS: u64 = 12;
    const MAX_SESSIONS: usize = 16;
    const MAX_POINTS: usize = 600;
    let mut events: Vec<Event> = Vec::new();
    for k in 0..REPLICAS {
        for &(v, s) in &f.events {
            events.push((
                v + 10 * k,
                GpsSample {
                    point: s.point,
                    t: s.t + k as f64 * 13.0,
                },
            ));
        }
    }
    events.sort_by(|a, b| a.1.t.partial_cmp(&b.1.t).expect("finite timestamps"));
    let cfg = IngestConfig {
        threads: 4,
        max_buffered_points: MAX_POINTS,
        max_sessions: MAX_SESSIONS,
        ..config()
    };

    let dir = test_dir("big-fleet");
    let mut engine =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
    for &(v, s) in &events {
        engine.push(v, s).expect("push");
        assert!(
            engine.session_count() <= MAX_SESSIONS,
            "session budget must hold after every push"
        );
        assert!(
            engine.buffered_points() <= MAX_POINTS,
            "point budget must hold after every push"
        );
    }
    assert!(
        engine.stats().sessions_evicted > 0,
        "a fleet this size must overflow the budget"
    );
    let log_live: Vec<u64> = engine.eviction_log().iter().copied().collect();
    drop(engine); // crash mid-run

    let mut recovered =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
    let log_replayed: Vec<u64> = recovered.eviction_log().iter().copied().collect();
    assert_eq!(log_replayed, log_live, "replay reproduces eviction order");
    let corpus_recovered = finish(&mut recovered);
    let corpus_clean = reference_corpus("big-fleet-ref", cfg, &events);
    assert_eq!(
        corpus_recovered, corpus_clean,
        "eviction and the crash must be invisible in the corpus bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deterministic seeded matrix the CI `disk-fault-smoke` job runs:
/// every fault kind at several operation indices over a short stream.
/// Cheap (no compression comparison — the proptest above owns
/// byte-identity); asserts the typed-error taxonomy, that one-shot
/// transient faults are absorbed by the retry budget, and that recovery
/// and a final checkpoint always succeed.
#[test]
fn seeded_fault_matrix_smoke() {
    let f = fleet();
    let events = &f.events[..60.min(f.events.len())];
    let cfg = config();
    for (k, &kind) in FaultKind::ALL.iter().enumerate() {
        for &delta in &[0u64, 7, 23, 61] {
            let dir = test_dir(&format!("smoke-{k}-{delta}"));
            let faulty = FaultyIo::new(Vec::new());
            let mut engine = IngestEngine::open_with_io(
                &dir,
                Arc::clone(&f.matcher),
                f.press(),
                cfg,
                faulty.clone(),
            )
            .expect("open");
            faulty.arm(DiskFault {
                at_op: faulty.ops() + delta,
                kind,
                sticky: false,
            });
            let mut errors = 0usize;
            for &(v, s) in events {
                match engine.push(v, s) {
                    Ok(_) => {}
                    Err(ServeError::StorageFull(_)) | Err(ServeError::Backpressure { .. }) => {
                        errors += 1;
                    }
                    Err(other) => panic!("untyped fault {kind:?}@{delta}: {other}"),
                }
            }
            let stats = engine.stats();
            match kind {
                // A single transient error is absorbed by the retry
                // budget (appends) or by sync-failure degradation:
                // either way no push is refused.
                FaultKind::Eio | FaultKind::SyncFail => {
                    assert_eq!(errors, 0, "{kind:?}@{delta}: one-shot transient must heal");
                    if faulty.injected() > 0 {
                        assert!(
                            stats.io_retries + stats.sync_failures > 0,
                            "{kind:?}@{delta}: the absorbed fault must be counted"
                        );
                    }
                }
                // Out-of-space is persistent: exactly the faulted
                // operation's push is refused, the rest proceed.
                FaultKind::Enospc | FaultKind::ShortWrite => {
                    if faulty.injected() > 0 {
                        assert!(
                            errors <= 1,
                            "{kind:?}@{delta}: a one-shot ENOSPC refuses at most one push"
                        );
                        assert!(
                            stats.storage_full_rejections + stats.sync_failures > 0,
                            "{kind:?}@{delta}: rejection must be counted"
                        );
                    }
                }
            }
            drop(engine);
            let mut recovered = IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg)
                .expect("recovery after one-shot fault");
            let _ = finish(&mut recovered);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Degraded mode end to end: the disk fills, every ingest push is
/// refused with a typed `StorageFull` while flush/query keep working,
/// then space returns and ingest resumes — and the final corpus
/// contains exactly the fixes that were ever journaled.
#[test]
fn disk_full_then_freed_resumes_ingest() {
    let f = fleet();
    let cfg = config();
    let dir = test_dir("disk-full");
    let faulty = FaultyIo::new(Vec::new());
    let mut engine =
        IngestEngine::open_with_io(&dir, Arc::clone(&f.matcher), f.press(), cfg, faulty.clone())
            .expect("open");

    let third = f.events.len() / 3;
    let mut journaled: Vec<Event> = Vec::new();
    for &(v, s) in &f.events[..third] {
        if engine.push(v, s).expect("clean push").is_ingested() {
            journaled.push((v, s));
        }
    }

    // The disk fills: persistent ENOSPC on every write from now on.
    faulty.arm(DiskFault {
        at_op: 0,
        kind: FaultKind::Enospc,
        sticky: true,
    });
    let mut refused = 0usize;
    for &(v, s) in &f.events[third..2 * third] {
        match engine.push(v, s) {
            Err(ServeError::StorageFull(_)) => refused += 1,
            Ok(ack) => assert!(
                !ack.is_ingested(),
                "an ingested ack while the disk is full would be a lie"
            ),
            Err(other) => panic!("expected StorageFull, got {other}"),
        }
    }
    assert!(refused > 0, "a full disk must refuse pushes");
    assert_eq!(engine.stats().storage_full_rejections as usize, refused);
    // Degraded, not dead: matching/compression (no journal writes) and
    // explicit durability calls keep working with typed answers.
    engine.flush().expect("flush needs no disk");
    assert!(matches!(engine.sync(), Err(ServeError::StorageFull(_))));
    assert!(matches!(
        engine.checkpoint(),
        Err(ServeError::StorageFull(_)) | Err(ServeError::Manifest(_))
    ));

    // Space returns; ingest resumes without a restart.
    faulty.clear();
    for &(v, s) in &f.events[2 * third..] {
        if engine.push(v, s).expect("resumed push").is_ingested() {
            journaled.push((v, s));
        }
    }
    let corpus_live = finish(&mut engine);
    drop(engine);
    let corpus_ref = reference_corpus("disk-full-ref", cfg, &journaled);
    assert_eq!(
        corpus_live, corpus_ref,
        "the published corpus must hold exactly the journaled fixes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Finishes an engine and returns the *merged* corpus bytes — every
/// shard's slice in canonical key order, the shard-count-invariant
/// artifact the determinism contract is stated over.
fn finish_merged(engine: &mut IngestEngine) -> Vec<u8> {
    engine.finalize_all().expect("finalize_all");
    engine.flush().expect("flush");
    engine.checkpoint().expect("checkpoint");
    engine.merged_corpus_bytes().expect("merged corpus")
}

/// Pushes `events` through a fresh fault-free engine with `cfg` and
/// returns the merged corpus bytes.
fn merged_reference(tag: &str, cfg: IngestConfig, events: &[Event]) -> Vec<u8> {
    let f = fleet();
    let dir = test_dir(tag);
    let mut engine =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open reference");
    for &(v, s) in events {
        engine.push(v, s).expect("reference push");
    }
    let merged = finish_merged(&mut engine);
    let _ = std::fs::remove_dir_all(&dir);
    merged
}

/// Single-shard merged corpus over the full fixture stream — the
/// baseline every shard count must reproduce byte-for-byte.
fn shard_invariance_baseline() -> &'static Vec<u8> {
    static BASE: OnceLock<Vec<u8>> = OnceLock::new();
    BASE.get_or_init(|| merged_reference("shard-base", config(), &fleet().events))
}

/// The published corpus is shard-count invariant: for every shard count
/// the merged corpus bytes equal the single-shard run's, both on a
/// clean run and after a crash (all journals intact) plus parallel
/// per-shard recovery.
#[test]
fn published_corpus_is_shard_count_invariant() {
    let f = fleet();
    for &shards in &[2usize, 3, 7] {
        let cfg = IngestConfig { shards, ..config() };
        let dir = test_dir(&format!("shard-inv-{shards}"));
        let mut engine =
            IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
        for &(v, s) in &f.events {
            engine.push(v, s).expect("push");
        }
        drop(engine); // crash: no finalize, no checkpoint

        let mut recovered =
            IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
        assert_eq!(recovered.num_shards(), shards);
        let merged = finish_merged(&mut recovered);
        assert_eq!(
            &merged,
            shard_invariance_baseline(),
            "merged corpus at {shards} shards must be byte-identical to the single-shard run"
        );
        // Every shard committed its own journal + corpus slice under
        // the one manifest generation.
        for k in 0..shards {
            assert!(
                recovered.shard_corpus_path(k).exists(),
                "shard {k} corpus file must exist"
            );
            assert!(
                recovered.shard_wal_path(k).exists(),
                "shard {k} journal must exist"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One cell of the *sharded* fault matrix: a seeded disk fault scoped
/// to exactly one shard's journal, composed with a kill tearing that
/// shard's journal at a legitimate power-loss offset. Healthy shards
/// must keep acking, the fault must surface as typed
/// [`ServeError::ShardDegraded`] naming the faulted shard, rejections
/// must never leak into healthy shards' counters, and the recovered
/// merged corpus must be byte-identical to a clean **single-shard** run
/// over the surviving events (isolation + shard-count invariance in
/// one assertion).
fn run_sharded_fault_cell(
    tag: &str,
    shards: usize,
    faulted: usize,
    delta: u64,
    kind: FaultKind,
    sticky: bool,
    kill_frac: f64,
) {
    let f = fleet();
    let cfg = IngestConfig { shards, ..config() };
    let dir = test_dir(&format!("scell-{tag}"));
    let faulty = FaultyIo::new(Vec::new());
    let mut engine =
        IngestEngine::open_with_io(&dir, Arc::clone(&f.matcher), f.press(), cfg, faulty.clone())
            .expect("open with clean io");
    // Degrade exactly one shard: the fault fires only on operations
    // touching that shard's journal file (any generation).
    faulty.arm_scoped(
        &format!(".s{faulted}.wal"),
        DiskFault {
            at_op: delta,
            kind,
            sticky,
        },
    );

    let mut journaled: Vec<(usize, usize, u64)> = Vec::new(); // (event, shard, ack offset)
    let mut healthy_acks = 0usize;
    for (i, &(v, s)) in f.events.iter().enumerate() {
        let k = engine.shard_of(v);
        match engine.push(v, s) {
            Ok(ack) => {
                if let Some(offset) = ack.offset() {
                    journaled.push((i, k, offset));
                    if k != faulted {
                        healthy_acks += 1;
                    }
                }
            }
            Err(e) => {
                assert!(
                    matches!(
                        e.root_cause(),
                        ServeError::StorageFull(_) | ServeError::Backpressure { .. }
                    ),
                    "push surfaced an untyped fault: {e}"
                );
                if shards > 1 {
                    assert_eq!(
                        e.degraded_shard(),
                        Some(faulted),
                        "a scoped fault must degrade exactly the faulted shard"
                    );
                    assert_eq!(k, faulted, "only the faulted shard's pushes may fail");
                } else {
                    assert_eq!(e.degraded_shard(), None, "single-shard errors stay bare");
                }
            }
        }
    }
    assert!(
        healthy_acks > 0 || shards == 1,
        "shards other than the faulted one must keep acking"
    );
    // Rejections are shard-local: healthy shards' counters stay clean.
    for k in 0..shards {
        if k != faulted {
            let s = engine.shard_stats(k);
            assert_eq!(
                s.storage_full_rejections + s.backpressure_rejections,
                0,
                "shard {k} is healthy; the faulted shard's rejections must not leak into it"
            );
        }
    }
    let durable = engine.shard_durable_offset(faulted);
    drop(engine); // crash with the fault still armed

    let len = shard_wal_len(&dir, faulted as u32).expect("shard wal len");
    let lo = durable.max(WAL_HEADER_LEN);
    assert!(len >= lo, "durable watermark cannot exceed the journal");
    let cut = lo + ((len - lo) as f64 * kill_frac).round() as u64;
    truncate_shard_wal(&dir, faulted as u32, cut).expect("truncate");

    let mut recovered = IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg)
        .expect("recovery must succeed on the real filesystem");
    let merged_a = finish_merged(&mut recovered);

    // Survivors: every journaled event on a healthy shard (its journal
    // is intact), plus the faulted shard's frames under the cut.
    let surviving: Vec<Event> = journaled
        .iter()
        .filter(|&&(_, k, off)| k != faulted || off <= cut)
        .map(|&(idx, _, _)| f.events[idx])
        .collect();
    // The reference deliberately runs at ONE shard: byte-identity here
    // proves isolation and shard-count invariance at once.
    let merged_b = merged_reference(&format!("scell-ref-{tag}"), config(), &surviving);
    assert_eq!(
        merged_a, merged_b,
        "fault {kind:?} delta {delta} sticky {sticky} on shard {faulted}/{shards} cut {cut}: \
         recovered merged corpus must be byte-identical to a clean single-shard run \
         over the surviving events"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sharded fault matrix: fault kind × faulted shard × shard
    /// count × kill fraction (ISSUE 10 satellite). One shard's disk
    /// fault plus a torn journal on that shard must stay invisible
    /// outside its failure domain.
    #[test]
    fn sharded_disk_fault_degrades_only_its_shard(
        shards_idx in 0usize..4,
        faulted_seed in 0usize..7,
        delta in 0u64..80,
        kind_idx in 0usize..4,
        sticky in any::<bool>(),
        kill_frac in 0.0f64..=1.0,
    ) {
        let shards = [1usize, 2, 3, 7][shards_idx];
        let faulted = faulted_seed % shards;
        let kind = FaultKind::ALL[kind_idx];
        run_sharded_fault_cell(
            &format!("{shards}-{faulted}-{delta}-{kind_idx}-{sticky}"),
            shards,
            faulted,
            delta,
            kind,
            sticky,
            kill_frac,
        );
    }
}

/// Deterministic partial-fleet degraded mode: a sticky ENOSPC pins one
/// shard of three, its pushes fail typed while both other shards keep
/// acking, its rejections stay in its own counters, healing is
/// in-process via `clear()`, and the final merged corpus holds exactly
/// the journaled fixes.
#[test]
fn sticky_fault_on_one_shard_leaves_the_fleet_ingesting() {
    let f = fleet();
    let cfg = IngestConfig {
        shards: 3,
        ..config()
    };
    let dir = test_dir("sticky-shard");
    let faulty = FaultyIo::new(Vec::new());
    let mut engine =
        IngestEngine::open_with_io(&dir, Arc::clone(&f.matcher), f.press(), cfg, faulty.clone())
            .expect("open");
    let faulted = engine.shard_of(f.events[0].0);
    faulty.arm_scoped(
        &format!(".s{faulted}.wal"),
        DiskFault {
            at_op: 0,
            kind: FaultKind::Enospc,
            sticky: true,
        },
    );

    let half = f.events.len() / 2;
    let mut journaled: Vec<Event> = Vec::new();
    let mut refused = 0usize;
    let mut healthy = 0usize;
    for &(v, s) in &f.events[..half] {
        let k = engine.shard_of(v);
        match engine.push(v, s) {
            Ok(ack) => {
                assert_ne!(k, faulted, "the pinned shard cannot ack while full");
                if ack.is_ingested() {
                    journaled.push((v, s));
                    healthy += 1;
                }
            }
            Err(e) => {
                assert_eq!(k, faulted, "healthy shards must not fail");
                assert_eq!(e.degraded_shard(), Some(faulted));
                assert!(e.is_storage_full(), "expected StorageFull, got {e}");
                refused += 1;
            }
        }
    }
    assert!(refused > 0, "the fixture routes events to every shard");
    assert!(healthy > 0, "healthy shards keep acking while one is full");
    assert_eq!(
        engine.shard_stats(faulted).storage_full_rejections as usize,
        refused,
        "every refusal lands in the faulted shard's counters"
    );
    for k in 0..3 {
        if k != faulted {
            assert_eq!(engine.shard_stats(k).storage_full_rejections, 0);
        }
    }
    // Summed view still sees the rejections.
    assert_eq!(engine.stats().storage_full_rejections as usize, refused);

    // Space returns on the pinned shard; it heals in-process.
    faulty.clear();
    for &(v, s) in &f.events[half..] {
        if engine.push(v, s).expect("healed push").is_ingested() {
            journaled.push((v, s));
        }
    }
    let merged_live = finish_merged(&mut engine);
    drop(engine);
    let merged_ref = merged_reference("sticky-shard-ref", config(), &journaled);
    assert_eq!(
        merged_live, merged_ref,
        "the merged corpus must hold exactly the journaled fixes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Incremental checkpoints: with 8 shards and one dirty vehicle, the
/// next checkpoint rewrites only the dirty shard's corpus file —
/// every clean shard's file is a hard link to its previous generation
/// (same inode) — and the whole set still commits through the single
/// MANIFEST rename: a fault before the rename leaves the old
/// generation fully live.
#[test]
fn incremental_checkpoint_links_clean_shards_and_commits_atomically() {
    use std::os::unix::fs::MetadataExt;
    let f = fleet();
    let cfg = IngestConfig {
        shards: 8,
        ..config()
    };
    let dir = test_dir("incr-ckpt");
    let faulty = FaultyIo::new(Vec::new());
    let mut engine =
        IngestEngine::open_with_io(&dir, Arc::clone(&f.matcher), f.press(), cfg, faulty.clone())
            .expect("open");
    for &(v, s) in &f.events {
        engine.push(v, s).expect("push");
    }
    engine.finalize_all().expect("finalize_all");
    engine.checkpoint().expect("first checkpoint");
    let gen1 = engine.generation();
    let inodes1: Vec<u64> = (0..8)
        .map(|k| {
            std::fs::metadata(engine.shard_corpus_path(k))
                .expect("gen1 shard corpus")
                .ino()
        })
        .collect();

    // Dirty exactly one shard: new fixes for vehicle 0 only.
    let dirty_shard = engine.shard_of(0);
    for &(v, s) in f.events.iter().filter(|&&(v, _)| v == 0).take(12) {
        engine
            .push(
                v,
                GpsSample {
                    point: s.point,
                    t: s.t + 1.0e4,
                },
            )
            .expect("dirty push");
    }
    engine.finalize(0).expect("finalize vehicle 0");

    // Crash window: a checkpoint faulted before its manifest rename
    // leaves the old generation fully live.
    faulty.arm(DiskFault {
        at_op: faulty.ops() + 3,
        kind: FaultKind::Enospc,
        sticky: true,
    });
    assert!(
        engine.checkpoint().is_err(),
        "faulted checkpoint fails typed"
    );
    assert_eq!(
        engine.generation(),
        gen1,
        "a failed checkpoint commits nothing"
    );
    faulty.clear();

    engine.checkpoint().expect("second checkpoint");
    let gen2 = engine.generation();
    assert!(gen2 > gen1);
    for (k, &ino1) in inodes1.iter().enumerate() {
        let ino2 = std::fs::metadata(engine.shard_corpus_path(k))
            .expect("gen2 shard corpus")
            .ino();
        if k == dirty_shard {
            assert_ne!(ino2, ino1, "the dirty shard's corpus must be rewritten");
        } else {
            assert_eq!(
                ino2, ino1,
                "clean shard {k} must hard-link its previous corpus file"
            );
        }
    }
    // The recovered engine serves the updated merged corpus.
    drop(engine);
    let recovered =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
    assert_eq!(recovered.generation(), gen2);
    recovered
        .merged_corpus_bytes()
        .expect("merged corpus serves");
    let _ = std::fs::remove_dir_all(&dir);
}
