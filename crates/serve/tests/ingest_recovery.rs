//! Crash-recovery and fault-injection tests for the ingest engine.
//!
//! The central property: for ANY kill offset into the journal, the
//! recovered engine finishes with a corpus byte-identical to a clean
//! engine fed exactly the acked prefix of the stream — no acked point is
//! ever lost, and nothing unacked sneaks in.

use press_core::query::QueryEngine;
use press_core::reformat::{reformat, PathSample};
use press_core::store::TrajectoryStore;
use press_core::{BtcBounds, CompressedTrajectory, Press, PressConfig};
use press_matcher::{GpsSample, MapMatcher, MatcherConfig};
use press_network::{grid_network, GridConfig, Mbr, RoadNetwork, SpBackend};
use press_serve::wal::WAL_HEADER_LEN;
use press_serve::{
    shard_wal_len, truncate_shard_wal, truncate_wal, wal_len, Ack, Event, FaultPlan, IngestConfig,
    IngestEngine, SessionPolicy,
};
use press_workload::{Workload, WorkloadConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Shared fixture: a network, a trained compressor, a matcher, and a
/// clean interleaved multi-vehicle event stream.
struct Fleet {
    net: Arc<RoadNetwork>,
    matcher: Arc<MapMatcher>,
    press: Press,
    events: Vec<Event>,
}

impl Fleet {
    fn press(&self) -> Press {
        self.press.reconfigured(self.press.config())
    }
}

fn fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(|| {
        let net = Arc::new(grid_network(&GridConfig {
            nx: 8,
            ny: 8,
            spacing: 150.0,
            weight_jitter: 0.12,
            removal_prob: 0.0,
            seed: 21,
        }));
        let sp = SpBackend::Dense.build(net.clone());
        let workload = Workload::generate(
            net.clone(),
            sp.clone(),
            WorkloadConfig {
                num_trajectories: 30,
                seed: 21,
                ..WorkloadConfig::default()
            },
        );
        let (train, eval) = workload.split(0.5);
        let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
        let press = Press::train(
            sp,
            &training_paths,
            PressConfig {
                bounds: BtcBounds::new(45.0, 15.0),
                ..PressConfig::default()
            },
        )
        .expect("training");
        let matcher = Arc::new(MapMatcher::new(net.clone(), MatcherConfig::default()));
        // Eight vehicles, staggered starts, merged into one arrival
        // stream ordered by timestamp.
        let mut events: Vec<Event> = Vec::new();
        for (v, record) in eval.iter().take(10).enumerate() {
            let trace = record.gps_trace(&net, 8.0, 4.0);
            for p in &trace.points {
                events.push((
                    v as u64,
                    GpsSample {
                        point: p.point,
                        t: p.t + v as f64 * 37.0,
                    },
                ));
            }
        }
        events.sort_by(|a, b| a.1.t.partial_cmp(&b.1.t).expect("finite timestamps"));
        assert!(events.len() > 100, "fixture stream too small");
        Fleet {
            net,
            matcher,
            press,
            events,
        }
    })
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("press-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> IngestConfig {
    IngestConfig {
        policy: SessionPolicy::default(),
        idle_timeout: 0.0,
        max_session_points: 0,
        block_size: 3,
        threads: 2,
        max_lattice_work: 0,
        max_salvage_splits: 8,
        quarantine_log_cap: 256,
        ..IngestConfig::default()
    }
}

/// Pushes `events` into a fresh engine at `dir`, recording the event
/// index and ack offset of every ingested (journaled) fix.
fn run_clean(
    dir: &std::path::Path,
    cfg: IngestConfig,
    events: &[Event],
) -> (IngestEngine, Vec<(usize, u64)>) {
    let f = fleet();
    let mut engine = IngestEngine::open(dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
    let mut acked = Vec::new();
    for (i, &(v, s)) in events.iter().enumerate() {
        if let Some(offset) = engine.push(v, s).expect("push").offset() {
            acked.push((i, offset));
        }
    }
    (engine, acked)
}

/// Finishes an engine (finalize + flush + checkpoint) and returns the
/// published corpus bytes.
fn finish(engine: &mut IngestEngine) -> Vec<u8> {
    engine.finalize_all().expect("finalize_all");
    engine.flush().expect("flush");
    engine.checkpoint().expect("checkpoint");
    std::fs::read(engine.corpus_path()).expect("corpus bytes")
}

#[test]
fn clean_ingest_equals_the_offline_pipeline() {
    let f = fleet();
    let dir = test_dir("clean");
    let (mut engine, acked) = run_clean(&dir, config(), &f.events);
    assert_eq!(acked.len(), f.events.len(), "clean stream fully accepted");
    engine.finalize_all().expect("finalize_all");
    let pieces = engine.flush().expect("flush");
    assert!(pieces >= 8, "at least one piece per vehicle");

    // Offline reference: per vehicle, the batch pipeline (salvaging
    // matcher + batch compress) over the same samples. finalize_all
    // closes sessions in first-arrival order = staggered vehicle order.
    let mut expected: Vec<CompressedTrajectory> = Vec::new();
    for v in 0..10u64 {
        let samples: Vec<GpsSample> = f
            .events
            .iter()
            .filter(|(ev, _)| *ev == v)
            .map(|&(_, s)| s)
            .collect();
        let report = f.matcher.match_trajectory_salvaging(&samples, 0, 8);
        assert!(report.dropped.is_empty(), "vehicle {v} should match");
        for piece in report.pieces {
            let path_samples: Vec<PathSample> = piece
                .samples
                .iter()
                .map(|m| PathSample {
                    edge_idx: m.edge_idx,
                    frac: m.frac,
                    t: m.t,
                })
                .collect();
            let traj = reformat(&f.net, piece.edges, &path_samples).expect("reformat");
            expected.push(f.press.compress(&traj).expect("compress"));
        }
    }
    assert_eq!(engine.finished(), &expected[..], "streaming == batch");

    // Checkpoint publishes exactly this corpus.
    engine.checkpoint().expect("checkpoint");
    let store = TrajectoryStore::open(&engine.corpus_path()).expect("open corpus");
    assert_eq!(store.len(), expected.len());
    assert_eq!(store.decode_all().expect("decode"), expected);
    // After checkpoint the WAL holds no points (all published).
    let (_, replay) = press_serve::Wal::open(&engine.wal_path()).expect("wal");
    assert!(
        !replay
            .records
            .iter()
            .any(|r| matches!(r, press_serve::WalRecord::Point { .. })),
        "checkpoint should leave no in-flight points"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Core crash property, driven at specific cut points by the proptest
/// below: kill run A at `cut` bytes of journal, recover, finish; a clean
/// run B over exactly the acked prefix must produce byte-identical
/// artifacts.
fn assert_kill_recovers(tag: &str, cfg: IngestConfig, events: &[Event], cut: u64) {
    let dir_a = test_dir(&format!("kill-a-{tag}"));
    let (engine_a, acked) = run_clean(&dir_a, cfg, events);
    drop(engine_a); // crash: no finalize, no checkpoint, no sync
    let cut = cut.min(wal_len(&dir_a).expect("wal len"));
    truncate_wal(&dir_a, cut).expect("truncate");

    let f = fleet();
    let mut recovered =
        IngestEngine::open(&dir_a, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
    let report = *recovered.recovery();
    // Acked prefix: events whose frame survived the cut entirely.
    let survivors = acked.iter().take_while(|&&(_, off)| off <= cut).count();
    assert_eq!(
        report.replayed_points as usize, survivors,
        "cut {cut}: every surviving acked point replays, nothing more"
    );
    let prefix = match acked[..survivors].last() {
        Some(&(idx, _)) => &events[..=idx],
        None => &events[..0],
    };
    let corpus_a = finish(&mut recovered);

    let dir_b = test_dir(&format!("kill-b-{tag}"));
    let (mut engine_b, _) = run_clean(&dir_b, cfg, prefix);
    let corpus_b = finish(&mut engine_b);
    assert_eq!(
        corpus_a, corpus_b,
        "cut {cut}: recovered corpus must be byte-identical to the clean run"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill at an arbitrary journal byte offset — including inside the
    /// header, mid-frame, and exactly on frame boundaries.
    #[test]
    fn kill_at_any_offset_loses_no_acked_point(frac in 0.0f64..=1.0) {
        let f = fleet();
        // Idle + rollover active so recovery also replays segmentation.
        let cfg = IngestConfig {
            idle_timeout: 400.0,
            max_session_points: 24,
            ..config()
        };
        // Probe the full journal: a dry run tells us its final length.
        let dir = test_dir("kill-probe");
        let (engine, _) = run_clean(&dir, cfg, &f.events);
        let final_len = engine.wal_offset();
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
        let cut = (final_len as f64 * frac).round() as u64;
        assert_kill_recovers(&format!("{frac:.6}"), cfg, &f.events, cut);
    }

    /// Same property on a fault-mangled stream: dirty input quarantines
    /// deterministically, so the acked-prefix equivalence still holds.
    #[test]
    fn mangled_stream_recovers_deterministically(seed in 0u64..1_000_000) {
        let f = fleet();
        let plan = FaultPlan {
            seed,
            drop_prob: 0.05,
            corrupt_prob: 0.08,
            duplicate_prob: 0.08,
            reorder_prob: 0.05,
        };
        let mangled = plan.mangle(&f.events);
        let cfg = IngestConfig {
            idle_timeout: 300.0,
            max_session_points: 16,
            max_lattice_work: 200_000,
            ..config()
        };
        let dir = test_dir("mangle-probe");
        let (engine, _) = run_clean(&dir, cfg, &mangled);
        let final_len = engine.wal_offset();
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
        // Derive the kill offset from the seed, spanning the journal.
        let cut = WAL_HEADER_LEN + seed % (final_len - WAL_HEADER_LEN + 1);
        assert_kill_recovers(&format!("m{seed}"), cfg, &mangled, cut);
    }
}

#[test]
fn torn_final_frame_is_recovered_not_fatal() {
    let f = fleet();
    let dir = test_dir("torn");
    let (engine, acked) = run_clean(&dir, config(), &f.events);
    let final_len = engine.wal_offset();
    drop(engine);
    // Tear the last frame mid-payload (5 bytes short of complete).
    let cut = final_len - 5;
    truncate_wal(&dir, cut).expect("truncate");
    let recovered =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), config()).expect("recover");
    let report = recovered.recovery();
    assert!(report.torn_bytes > 0, "torn tail must be detected");
    assert_eq!(report.replayed_points as usize, acked.len() - 1);
    assert_eq!(
        report.points_in_flight,
        acked.len() - 1,
        "all surviving points still in flight (no checkpoint yet)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_then_kill_keeps_published_corpus_and_tail() {
    let f = fleet();
    let cfg = IngestConfig {
        idle_timeout: 350.0,
        max_session_points: 20,
        ..config()
    };
    let dir_a = test_dir("ckpt-a");
    let mut engine =
        IngestEngine::open(&dir_a, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
    let split = f.events.len() * 3 / 5;
    let mut acked: Vec<(usize, u64)> = Vec::new();
    for (i, &(v, s)) in f.events[..split].iter().enumerate() {
        if let Some(offset) = engine.push(v, s).expect("push").offset() {
            acked.push((i, offset));
        }
    }
    engine.checkpoint().expect("mid-run checkpoint");
    let base_len = engine.wal_offset();
    let pre_checkpoint_accepted = acked.len();
    for (i, &(v, s)) in f.events[split..].iter().enumerate() {
        if let Some(offset) = engine.push(v, s).expect("push").offset() {
            acked.push((split + i, offset));
        }
    }
    let final_len = engine.wal_offset();
    drop(engine); // crash after the checkpoint, mid-append
                  // A crash can only tear post-checkpoint appends: the rewritten base
                  // was synced and atomically renamed. Kill somewhere in the tail.
    let cut = base_len + (final_len - base_len) / 3;
    truncate_wal(&dir_a, cut).expect("truncate");

    let mut recovered =
        IngestEngine::open(&dir_a, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
    assert!(
        recovered.recovery().corpus_trajectories > 0,
        "published corpus must survive the crash"
    );
    let corpus_a = finish(&mut recovered);

    // Clean run B never checkpoints mid-way: checkpoints must be
    // invisible in the final artifact. Every pre-checkpoint accepted fix
    // survives (published corpus + synced rewritten base); post-checkpoint
    // fixes survive when their frame fits under the cut.
    let last_idx = acked
        .iter()
        .enumerate()
        .take_while(|(k, &(_, off))| *k < pre_checkpoint_accepted || off <= cut)
        .map(|(_, &(idx, _))| idx)
        .last()
        .expect("nonempty prefix");
    let dir_b = test_dir("ckpt-b");
    let (mut engine_b, _) = run_clean(&dir_b, cfg, &f.events[..=last_idx]);
    let corpus_b = finish(&mut engine_b);
    assert_eq!(
        corpus_a, corpus_b,
        "checkpoint must not change the recovered corpus"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Copies every regular file of the flat ingest directory.
fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
    }
}

/// The checkpoint commit window: a checkpoint writes a new corpus and a
/// new (shrunk) journal, then commits both with one manifest rename. A
/// kill *between* those steps must never yield the new corpus paired
/// with the old journal — that replay would compress the flushed
/// trajectories a second time. Each window below reconstructs the exact
/// directory a kill at that point leaves behind and asserts recovery is
/// byte-identical to a clean, never-checkpointed run.
#[test]
fn kill_inside_checkpoint_commit_window_recovers_equivalently() {
    let f = fleet();
    let cfg = IngestConfig {
        idle_timeout: 350.0,
        max_session_points: 20,
        ..config()
    };
    let dir = test_dir("ckpt-window");
    let mut engine =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
    let split = f.events.len() * 3 / 5;
    for &(v, s) in &f.events[..split] {
        engine.push(v, s).expect("push");
    }
    engine.sync().expect("sync");
    // Snapshot the pre-checkpoint directory: the state every
    // not-yet-committed kill must fall back to.
    let pre = test_dir("ckpt-window-pre");
    copy_dir(&dir, &pre);
    engine.checkpoint().expect("checkpoint");
    assert_eq!(engine.generation(), 1, "checkpoint bumps the generation");
    let new_corpus = engine.corpus_path();
    let new_wal = engine.wal_path();
    let new_manifest = dir.join(press_serve::MANIFEST_FILE);
    drop(engine);

    // Reference: one clean run over every event, no mid-run checkpoint.
    let dir_b = test_dir("ckpt-window-clean");
    let (mut clean, _) = run_clean(&dir_b, cfg, &f.events);
    let expect = finish(&mut clean);

    let windows: [(&str, Vec<&PathBuf>); 3] = [
        // Kill after the new corpus was written, before the new journal
        // and the manifest rename.
        ("corpus-only", vec![&new_corpus]),
        // Kill after both new artifacts, before the manifest rename —
        // the exact new-corpus + old-journal double-compression window.
        ("corpus-and-wal", vec![&new_corpus, &new_wal]),
        // Kill after the manifest rename, before the old generation's
        // cleanup.
        (
            "manifest-flipped",
            vec![&new_corpus, &new_wal, &new_manifest],
        ),
    ];
    for (tag, files) in windows {
        let w = test_dir(&format!("ckpt-window-{tag}"));
        copy_dir(&pre, &w);
        for file in files {
            let name = file.file_name().expect("file name");
            std::fs::copy(file, w.join(name)).expect("copy artifact");
        }
        let mut recovered =
            IngestEngine::open(&w, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
        for &(v, s) in &f.events[split..] {
            recovered.push(v, s).expect("push");
        }
        let got = finish(&mut recovered);
        assert_eq!(
            got, expect,
            "window {tag}: recovery must match the clean run exactly"
        );
        let _ = std::fs::remove_dir_all(&w);
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&pre);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn missing_manifest_over_artifacts_is_a_typed_refusal() {
    let f = fleet();
    let dir = test_dir("no-manifest");
    let (engine, _) = run_clean(&dir, config(), &f.events[..20]);
    drop(engine);
    std::fs::remove_file(dir.join(press_serve::MANIFEST_FILE)).expect("remove manifest");
    match IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), config()) {
        Err(press_serve::ServeError::Manifest(_)) => {}
        Err(other) => panic!("expected ServeError::Manifest, got {other:?}"),
        Ok(_) => panic!("artifacts without a manifest must refuse, not restart fresh"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_log_keeps_the_most_recent_records() {
    let f = fleet();
    let dir = test_dir("quarantine-ring");
    let cfg = IngestConfig {
        quarantine_log_cap: 4,
        ..config()
    };
    let mut engine =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
    let good = f.events[0];
    engine.push(good.0, good.1).expect("push");
    // Ten out-of-order fixes, distinguishable by x: under sustained
    // dirty input the ring must hold the most recent cap, not freeze on
    // the first cap.
    for i in 0..10u32 {
        let bad = GpsSample {
            point: press_network::Point::new(i as f64, 0.0),
            t: good.1.t - 1.0,
        };
        assert!(matches!(
            engine.push(good.0, bad).expect("push"),
            Ack::Quarantined(_)
        ));
    }
    let log = engine.quarantine_log();
    assert_eq!(log.len(), 4);
    let xs: Vec<f64> = log.iter().map(|r| r.sample.point.x).collect();
    assert_eq!(
        xs,
        vec![6.0, 7.0, 8.0, 9.0],
        "oldest-first, most recent kept"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_store_answers_queries_like_brute_force() {
    let f = fleet();
    let cfg = IngestConfig {
        idle_timeout: 500.0,
        max_session_points: 32,
        ..config()
    };
    let dir = test_dir("queries");
    let (engine, _) = run_clean(&dir, cfg, &f.events);
    let final_len = engine.wal_offset();
    drop(engine);
    truncate_wal(&dir, final_len * 2 / 3).expect("truncate");
    let mut recovered =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
    finish(&mut recovered);

    let store = TrajectoryStore::open(&recovered.corpus_path()).expect("open");
    let decoded = store.decode_all().expect("decode");
    assert!(!decoded.is_empty());
    let query = QueryEngine::new(recovered.press().model());
    // whereat through the block store == whereat on the decoded corpus.
    for (i, ct) in decoded.iter().enumerate() {
        let Some((t0, t1)) = ct.temporal.time_range() else {
            continue;
        };
        for k in 1..4 {
            let t = t0 + (t1 - t0) * k as f64 / 4.0;
            let mem = query.whereat(ct, t).expect("whereat mem");
            let disk = store.whereat(&query, i, t).expect("whereat disk");
            assert_eq!(mem, disk, "trajectory {i} at t={t}");
        }
    }
    // range through the synopsis-pruned store == brute force.
    let region = Mbr::new(0.0, 0.0, 600.0, 600.0);
    let hits = store.range(&query, 0.0, 400.0, &region).expect("range");
    let brute: Vec<usize> = decoded
        .iter()
        .enumerate()
        .filter(|(_, ct)| {
            let Some((a, z)) = ct.temporal.time_range() else {
                return false;
            };
            z >= 0.0 && a <= 400.0 && query.range(ct, 0.0, 400.0, &region).expect("range")
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits, brute);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dirty_input_is_quarantined_with_typed_reasons() {
    let f = fleet();
    let plan = FaultPlan {
        seed: 99,
        drop_prob: 0.0,
        corrupt_prob: 0.25,
        duplicate_prob: 0.15,
        reorder_prob: 0.10,
    };
    let mangled = plan.mangle(&f.events);
    let dir = test_dir("dirty");
    let (mut engine, acked) = run_clean(&dir, config(), &mangled);
    let stats = engine.stats();
    assert!(
        stats.total_quarantined() > 0,
        "corruption must hit the quarantine"
    );
    assert_eq!(
        stats.points_accepted as usize
            + stats.points_repaired as usize
            + stats.total_quarantined() as usize,
        mangled.len(),
        "every fix is acked exactly once"
    );
    assert_eq!(stats.points_accepted as usize, acked.len());
    assert!(!engine.quarantine_log().is_empty());
    // The dirty stream still compresses: the clean majority survives.
    engine.finalize_all().expect("finalize_all");
    assert!(engine.flush().expect("flush") > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_tree_persistence_ticks_on_stream_time() {
    let f = fleet();
    let dir = test_dir("hot-trees");
    let mut engine =
        IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), config()).expect("open");
    let cache = Arc::new(press_network::LazySpCache::with_default_config(
        f.net.clone(),
    ));
    let artifact = dir.join("sp_hot.press");
    // A non-positive interval is a config error, not a silent no-op.
    assert!(engine
        .enable_hot_tree_persist(Arc::clone(&cache), artifact.clone(), 0.0)
        .is_err());
    engine
        .enable_hot_tree_persist(Arc::clone(&cache), artifact.clone(), 40.0)
        .expect("enable");
    // Heat some trees so the persisted set is non-trivial.
    for v in f.net.node_ids().take(4) {
        let _ = cache.tree(v);
    }
    let span_start = f.events.first().expect("events").1.t;
    let span_end = f.events.last().expect("events").1.t;
    assert!(
        span_end - span_start > 80.0,
        "fixture stream too short for two ticks"
    );
    for &(v, s) in &f.events {
        let _ = engine.push(v, s).expect("push");
    }
    let saves = cache.stats().hot_saves;
    assert!(saves >= 1, "stream time advanced past the interval");
    // The timer is the stream clock, not per-fix: saves are bounded by
    // the observed span over the interval (+1 for the arming tick).
    assert!(
        (saves as f64) <= (span_end - span_start) / 40.0 + 1.0,
        "{saves} saves over a {:.0}s span",
        span_end - span_start
    );
    // The artifact is a loadable warm-start image of the resident trees.
    let loaded =
        press_network::LazySpCache::load_from(f.net.clone(), &artifact).expect("load hot trees");
    assert_eq!(loaded.capacity_trees(), cache.capacity_trees());
    assert!(loaded.cached_trees() > 0, "saved set must not be empty");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Finishes an engine and returns the merged (shard-count-invariant)
/// corpus bytes.
fn finish_merged(engine: &mut IngestEngine) -> Vec<u8> {
    engine.finalize_all().expect("finalize_all");
    engine.flush().expect("flush");
    engine.checkpoint().expect("checkpoint");
    engine.merged_corpus_bytes().expect("merged corpus")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The seeded-fault + kill-at-any-offset property over the shard
    /// matrix: mangle the stream with a seeded [`FaultPlan`], ingest at
    /// N shards, tear ONE seed-chosen shard's journal at an arbitrary
    /// byte offset, recover (parallel per-shard replay), finish — the
    /// merged corpus must be byte-identical to a clean single-shard run
    /// over exactly the surviving acked events.
    #[test]
    fn mangled_stream_with_a_shard_kill_recovers_across_the_matrix(
        seed in 0u64..1_000_000,
        shards_idx in 0usize..4,
    ) {
        let shards = [1usize, 2, 3, 7][shards_idx];
        let f = fleet();
        let plan = FaultPlan {
            seed,
            drop_prob: 0.05,
            corrupt_prob: 0.08,
            duplicate_prob: 0.08,
            reorder_prob: 0.05,
        };
        let mangled = plan.mangle(&f.events);
        let cfg = IngestConfig {
            idle_timeout: 300.0,
            max_session_points: 16,
            max_lattice_work: 200_000,
            shards,
            ..config()
        };
        let dir = test_dir(&format!("shardmatrix-{seed}-{shards}"));
        let mut engine =
            IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("open");
        // (event index, owning shard, ack offset) per journaled fix.
        let mut acked: Vec<(usize, usize, u64)> = Vec::new();
        for (i, &(v, s)) in mangled.iter().enumerate() {
            let k = engine.shard_of(v);
            if let Some(offset) = engine.push(v, s).expect("push").offset() {
                acked.push((i, k, offset));
            }
        }
        let victim = (seed as usize) % shards;
        drop(engine); // crash: no finalize, no checkpoint, no sync

        let len = shard_wal_len(&dir, victim as u32).expect("shard wal len");
        let cut = WAL_HEADER_LEN + seed % (len - WAL_HEADER_LEN + 1);
        truncate_shard_wal(&dir, victim as u32, cut).expect("truncate");

        let mut recovered =
            IngestEngine::open(&dir, Arc::clone(&f.matcher), f.press(), cfg).expect("recover");
        let merged_a = finish_merged(&mut recovered);

        // Survivors: intact shards keep everything they acked; the
        // victim keeps its frames under the cut.
        let surviving: Vec<Event> = acked
            .iter()
            .filter(|&&(_, k, off)| k != victim || off <= cut)
            .map(|&(idx, _, _)| mangled[idx])
            .collect();
        let ref_dir = test_dir(&format!("shardmatrix-ref-{seed}-{shards}"));
        let single = IngestConfig { shards: 1, ..cfg };
        let (mut reference, _) = run_clean(&ref_dir, single, &surviving);
        let merged_b = finish_merged(&mut reference);
        prop_assert_eq!(
            merged_a,
            merged_b,
            "seed {} at {} shards, victim {}, cut {}: recovered merged corpus must equal \
             the clean single-shard run over the surviving events",
            seed,
            shards,
            victim,
            cut
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }
}
