//! Offline stand-in for `criterion`, covering the API surface the bench
//! targets use: `Criterion::bench_function` / `benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up once, then runs batches of
//! iterations until either `sample_size` samples are collected or the
//! group's `measurement_time` budget is exhausted (whichever comes first,
//! with at least one sample). Mean / min / max wall-clock per iteration
//! are printed in a stable single-line format, and every completed
//! benchmark is appended to the JSON file named by the
//! `CRITERION_SHIM_JSON` environment variable when set — which is how the
//! repo records `BENCH_*.json` artifacts without the real criterion's
//! HTML machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly; see the module docs for the stopping rule.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup (also primes caches/lazy state).
        black_box(f());
        let started = Instant::now();
        while self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

#[derive(Clone, Debug)]
struct Record {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

fn run_one(
    name: &str,
    sample_size: usize,
    budget: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) -> Record {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
        budget,
    };
    f(&mut b);
    let ns: Vec<f64> = b.samples.iter().map(|d| d.as_nanos() as f64).collect();
    let (mean, min, max) = if ns.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            ns.iter().sum::<f64>() / ns.len() as f64,
            ns.iter().cloned().fold(f64::INFINITY, f64::min),
            ns.iter().cloned().fold(0.0, f64::max),
        )
    };
    let rec = Record {
        name: name.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples: ns.len(),
    };
    println!(
        "bench {:<48} mean {:>12}  min {:>12}  max {:>12}  ({} samples)",
        rec.name,
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        rec.samples
    );
    append_json(&rec);
    rec
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Appends one record as a JSON line to `$CRITERION_SHIM_JSON`, if set.
fn append_json(rec: &Record) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            f,
            "{{\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
            rec.name.replace('"', "'"),
            rec.mean_ns,
            rec.min_ns,
            rec.max_ns,
            rec.samples
        );
    }
}

/// Group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Top-level driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Criterion {
    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        }
    }

    fn effective_measurement_time(&self) -> Duration {
        if self.measurement_time.is_zero() {
            Duration::from_secs(2)
        } else {
            self.measurement_time
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (n, t) = (
            self.effective_sample_size(),
            self.effective_measurement_time(),
        );
        run_one(name, n, t, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (n, t) = (
            self.effective_sample_size(),
            self.effective_measurement_time(),
        );
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: n,
            measurement_time: t,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let rec = run_one("t/x", 5, Duration::from_millis(200), &mut |b| {
            b.iter(|| std::hint::black_box(1 + 1))
        });
        assert!(rec.samples >= 1 && rec.samples <= 5);
        assert!(rec.min_ns <= rec.mean_ns && rec.mean_ns <= rec.max_ns);
    }

    #[test]
    fn group_chain_compiles() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(50)).sample_size(2);
        g.bench_function("f", |b| b.iter(|| 42));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
