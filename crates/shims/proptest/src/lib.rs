//! Offline stand-in for `proptest`, covering the macro/strategy surface
//! this workspace uses: the `proptest!` block with an optional
//! `#![proptest_config(...)]` header, range and tuple strategies,
//! `proptest::collection::vec`, `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics: each test runs `cases` deterministic pseudo-random inputs
//! (seeded from the test name, so failures reproduce across runs). There
//! is **no shrinking** — a failing case reports its inputs via the assert
//! message instead. That trades minimal counterexamples for zero external
//! dependencies, which the offline build requires.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error type a proptest case body can produce.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: fail the whole test.
    Fail(String),
    /// `prop_assume!` rejection: skip this case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    pub use crate::ProptestConfig;
}

/// A generator of values (subset of `proptest::strategy::Strategy` — no
/// shrinking, just sampling).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

pub mod strategy {
    pub use crate::Strategy;
}

// --- Range strategies -----------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// --- Tuple strategies -----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// --- any::<T>() -----------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- Collections ----------------------------------------------------------

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Deterministic per-test seed: hash of the test path, so each test has a
/// stable but distinct stream.
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Creates the RNG for one test case.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(name, case))
}

// --- Macros ---------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

/// The `proptest!` block: an optional config header followed by `#[test]`
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut ran: u32 = 0;
            for case in 0..cfg.cases {
                let mut __rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    { $body }
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
            assert!(
                ran > 0,
                "proptest {}: every case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1u32..10, v in crate::collection::vec((0u8..4, -1.0f64..1.0), 0..16)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 16);
            for &(a, f) in &v {
                prop_assert!(a < 4);
                prop_assert!((-1.0..1.0).contains(&f), "f out of range: {f}");
            }
        }

        #[test]
        fn assume_rejects_cases(x in 0u32..8) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = crate::case_rng("t", 3);
            (0..8).map(|_| rand::Rng::next_u64(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::case_rng("t", 3);
            (0..8).map(|_| rand::Rng::next_u64(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
