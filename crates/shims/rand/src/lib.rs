//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! the `Rng` methods `gen`, `gen_range`, `gen_bool`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this shim by path under the same crate name. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which
//! is all the seeded tests and workload generators require (they do not
//! depend on the upstream `StdRng` bit stream).

use std::ops::{Range, RangeInclusive};

/// Seeding behaviour (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "from all bits" (subset of the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type
/// (like rand 0.8's `SampleRange<T>`) so integer/float literals infer
/// from the call site.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Random number generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample within a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; same role, different — but stable — bit stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core seeds from u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

// --- Standard samples -----------------------------------------------------

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

// --- Range samples --------------------------------------------------------

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                a + <$t as Standard>::sample(rng) * (b - a)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues));
    }
}
