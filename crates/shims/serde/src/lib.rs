//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` trait names
//! plus re-exported no-op derives. See the `serde_derive` shim for why the
//! derives expand to nothing in this offline build.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de>: Sized {}
