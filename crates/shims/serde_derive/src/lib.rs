//! No-op `#[derive(Serialize, Deserialize)]` macros. The workspace derives
//! serde traits on its value types for downstream users, but nothing in
//! this offline build serializes through serde — so the derives expand to
//! nothing (the marker traits in the sibling `serde` shim are unused
//! bounds). Helper `#[serde(...)]` attributes are accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
