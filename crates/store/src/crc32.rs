//! CRC-32 (IEEE 802.3 polynomial, reflected), the per-section checksum of
//! the container format. Slice-by-8 with compile-time-built tables, so the
//! crate stays dependency-free while checksumming multi-hundred-megabyte
//! flat sections at memory-bandwidth-adjacent speed (the lazy per-section
//! validation of mapped opens runs over exactly such sections).

/// Eight 256-entry lookup tables for the reflected polynomial
/// `0xEDB88320`: `TABLES[0]` is the classic byte-at-a-time table,
/// `TABLES[k][i]` advances `TABLES[k-1][i]` by one more zero byte.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// CRC-32 of `data` (initial value `!0`, final XOR `!0` — the standard
/// IEEE parameterization, check value `0xCBF43926` for `"123456789"`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference, independent of every table above.
    fn crc32_reference(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn slice_by_8_matches_bitwise_reference_at_every_length() {
        // Every length 0..64 plus a long tail exercises the 8-byte main
        // loop, the remainder loop, and their seam.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in (0..64).chain([65, 511, 512, 513, 4095, 4096]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "mismatch at length {len}"
            );
        }
    }
}
