//! CRC-32 (IEEE 802.3 polynomial, reflected), the per-section checksum of
//! the container format. Table-driven with a compile-time-built table, so
//! the crate stays dependency-free.

/// 256-entry lookup table for the reflected polynomial `0xEDB88320`.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (initial value `!0`, final XOR `!0` — the standard
/// IEEE parameterization, check value `0xCBF43926` for `"123456789"`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}
