//! A packed hierarchy over per-block synopses — the interior levels of
//! the block-skipping index that [`TrajectoryStore`] consults so a
//! `range` query descends O(log #blocks) directory entries instead of
//! scanning all of them.
//!
//! [`TrajectoryStore`]: ../press_core/store/struct.TrajectoryStore.html
//!
//! # Shape
//!
//! The leaf level is the block directory itself: entry `i` is block
//! `i`'s synopsis (spatial rectangle × observed time span). Each
//! interior level groups [`SynopsisIndex::branching`] **consecutive**
//! entries of the level below and stores their union — a packed R-tree
//! in block order rather than an STR spatial sort, because blocks are
//! laid down in ingest order: consecutive blocks are adjacent in time,
//! and time is the discriminating dimension for fleet corpora (a
//! dashboard asks "who crossed this area *between 9:00 and 9:05*", not
//! "ever"). Packing consecutive runs keeps leaf ids equal to block ids,
//! makes construction a deterministic single pass, and preserves the
//! time clustering that makes interior pruning effective.
//!
//! # Correctness contract
//!
//! Every interior entry is the exact union of its children, so the
//! hierarchy is a *conservative over-approximation*: a pruned subtree
//! cannot contain a matching leaf, and [`SynopsisIndex::candidates`]
//! returns **exactly** the leaves a linear scan with the same predicate
//! would keep (tested below, and property-tested against the store's
//! brute-force scan in `tests/query_serving.rs`). Construction from a
//! given leaf sequence is deterministic, which is what lets a reader
//! *validate* a persisted index by rebuilding it from the block
//! directory and requiring bit-identical levels — a CRC-valid but
//! logically inconsistent section is a typed [`StoreError::Corrupt`],
//! never a wrong answer.
//!
//! # Example
//!
//! ```
//! use press_store::{IndexEntry, SynopsisIndex};
//!
//! // Four leaves on a line, each alive for 10 time units.
//! let leaves: Vec<IndexEntry> = (0..4)
//!     .map(|i| {
//!         let x = i as f64 * 100.0;
//!         let t = i as f64 * 10.0;
//!         IndexEntry::new(x, 0.0, x + 50.0, 50.0, t, t + 10.0)
//!     })
//!     .collect();
//! let index = SynopsisIndex::build(leaves, 2);
//!
//! // A probe touching only leaf 2's rectangle and time span.
//! let probe = IndexEntry::new(210.0, 10.0, 220.0, 20.0, 21.0, 29.0);
//! assert_eq!(index.candidates(&probe), vec![2]);
//!
//! // Its serialized form round-trips and survives validation.
//! let bytes = index.to_section_bytes();
//! let loaded = SynopsisIndex::from_section_bytes(&bytes).unwrap();
//! assert_eq!(loaded, index);
//! ```

use crate::{ByteReader, ByteWriter, Result, StoreError};

/// Default fan-out of interior levels. Sixteen keeps the tree shallow
/// (a million 64-trajectory blocks is four levels) while each pruning
/// test still eliminates 1/16 of the remaining directory.
pub const DEFAULT_BRANCHING: usize = 16;

/// One node of the hierarchy: an axis-aligned rectangle plus a closed
/// time span. At the leaf level this is a block synopsis; at interior
/// levels it is the exact union of the node's children.
///
/// The *empty* entry (infinite inverted bounds) represents a node with
/// no spatial or temporal extent — e.g. a block of trajectories whose
/// decoded geometry is empty. It intersects nothing, matching the
/// skip-always semantics of an empty MBR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexEntry {
    /// Minimum x of the rectangle.
    pub min_x: f64,
    /// Minimum y of the rectangle.
    pub min_y: f64,
    /// Maximum x of the rectangle.
    pub max_x: f64,
    /// Maximum y of the rectangle.
    pub max_y: f64,
    /// Earliest time covered.
    pub t0: f64,
    /// Latest time covered.
    pub t1: f64,
}

impl IndexEntry {
    /// A populated entry.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64, t0: f64, t1: f64) -> Self {
        IndexEntry {
            min_x,
            min_y,
            max_x,
            max_y,
            t0,
            t1,
        }
    }

    /// The entry that covers nothing: inverted infinite bounds, so it
    /// never matches and unions as the identity element.
    pub fn empty() -> Self {
        IndexEntry {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
            t0: f64::INFINITY,
            t1: f64::NEG_INFINITY,
        }
    }

    /// Grows `self` to also cover `other` (exact component-wise union).
    pub fn union(&mut self, other: &IndexEntry) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
        self.t0 = self.t0.min(other.t0);
        self.t1 = self.t1.max(other.t1);
    }

    /// True when this entry's rectangle touches `probe`'s rectangle
    /// (shared borders count) **and** their time spans overlap — the
    /// exact predicate of the store's linear directory scan
    /// (`syn.t1 < lo || syn.t0 > hi || !syn.mbr.intersects(region)`
    /// negated). Empty entries match nothing.
    pub fn matches(&self, probe: &IndexEntry) -> bool {
        self.t1 >= probe.t0
            && self.t0 <= probe.t1
            && self.min_x <= probe.max_x
            && self.max_x >= probe.min_x
            && self.min_y <= probe.max_y
            && self.max_y >= probe.min_y
    }
}

/// The packed hierarchy. `levels[0]` is the leaf level (one entry per
/// block, id = position); each higher level holds the unions of
/// `branching` consecutive entries of the level below; the last level
/// has at most `branching` entries. See the module docs for the shape
/// and the correctness contract.
#[derive(Clone, Debug, PartialEq)]
pub struct SynopsisIndex {
    branching: usize,
    levels: Vec<Vec<IndexEntry>>,
}

impl SynopsisIndex {
    /// Builds the hierarchy bottom-up from the leaf entries. `branching`
    /// must be at least 2. Deterministic: the same leaves always produce
    /// bit-identical levels.
    pub fn build(leaves: Vec<IndexEntry>, branching: usize) -> SynopsisIndex {
        assert!(branching >= 2, "branching factor must be at least 2");
        let mut levels = vec![leaves];
        while levels.last().expect("at least the leaf level").len() > branching {
            let below = levels.last().expect("at least the leaf level");
            let mut above = Vec::with_capacity(below.len().div_ceil(branching));
            for group in below.chunks(branching) {
                let mut u = IndexEntry::empty();
                for e in group {
                    u.union(e);
                }
                above.push(u);
            }
            levels.push(above);
        }
        SynopsisIndex { branching, levels }
    }

    /// Fan-out the hierarchy was built with.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// Number of leaves (= blocks indexed).
    pub fn num_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// Number of levels, including the leaf level (1 for ≤ `branching`
    /// leaves — the hierarchy degenerates to the directory itself).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Leaf entry `i` (block `i`'s synopsis).
    pub fn leaf(&self, i: usize) -> &IndexEntry {
        &self.levels[0][i]
    }

    /// Ids of every leaf matching `probe`, ascending — exactly the set a
    /// linear scan of the leaf level with [`IndexEntry::matches`] keeps.
    /// Subtrees whose union entry misses the probe are pruned without
    /// visiting their children.
    pub fn candidates(&self, probe: &IndexEntry) -> Vec<usize> {
        let mut out = Vec::new();
        self.candidates_into(probe, &mut out);
        out
    }

    /// [`Self::candidates`] into a caller-owned buffer (cleared first),
    /// so a batch executor can reuse one allocation per worker.
    pub fn candidates_into(&self, probe: &IndexEntry, out: &mut Vec<usize>) {
        out.clear();
        let top = self.levels.len() - 1;
        for i in 0..self.levels[top].len() {
            self.descend(top, i, probe, out);
        }
    }

    fn descend(&self, level: usize, node: usize, probe: &IndexEntry, out: &mut Vec<usize>) {
        if !self.levels[level][node].matches(probe) {
            return;
        }
        if level == 0 {
            out.push(node);
            return;
        }
        let below = &self.levels[level - 1];
        let first = node * self.branching;
        let last = (first + self.branching).min(below.len());
        for child in first..last {
            self.descend(level - 1, child, probe, out);
        }
    }

    /// Serializes the hierarchy for the additive `"index"` section of a
    /// trajectory-store container: branching, leaf count, level count,
    /// then each level's entry count and entries as six IEEE `f64` bit
    /// patterns. Old readers ignore the section; new readers rebuild the
    /// hierarchy when it is absent.
    pub fn to_section_bytes(&self) -> Vec<u8> {
        let total: usize = self.levels.iter().map(|l| l.len()).sum();
        let mut w = ByteWriter::with_capacity(24 + self.levels.len() * 8 + total * 48);
        w.put_u64(self.branching as u64);
        w.put_u64(self.num_leaves() as u64);
        w.put_u64(self.levels.len() as u64);
        for level in &self.levels {
            w.put_u64(level.len() as u64);
            for e in level {
                w.put_f64(e.min_x);
                w.put_f64(e.min_y);
                w.put_f64(e.max_x);
                w.put_f64(e.max_y);
                w.put_f64(e.t0);
                w.put_f64(e.t1);
            }
        }
        w.into_bytes()
    }

    /// Decodes a serialized hierarchy, validating its structural shape
    /// (level sizes must telescope by `branching`). This checks the
    /// *encoding*; whether the decoded hierarchy is consistent with a
    /// given block directory is the caller's job — compare against
    /// [`SynopsisIndex::build`] of the directory's leaves (deterministic
    /// construction makes that an equality test).
    pub fn from_section_bytes(bytes: &[u8]) -> Result<SynopsisIndex> {
        let mut r = ByteReader::new(bytes);
        let branching = r.get_len(u32::MAX as usize, "index branching")?;
        if branching < 2 {
            return Err(StoreError::Corrupt(format!(
                "index branching factor {branching} below 2"
            )));
        }
        let num_leaves = r.get_len(u32::MAX as usize, "index leaf")?;
        let num_levels = r.get_len(64, "index level")?;
        if num_levels == 0 {
            return Err(StoreError::Corrupt("index has no levels".into()));
        }
        let mut levels = Vec::with_capacity(num_levels);
        let mut expected = num_leaves;
        for l in 0..num_levels {
            let count = r.get_len(num_leaves.max(1), "index entry")?;
            if count != expected {
                return Err(StoreError::Corrupt(format!(
                    "index level {l} holds {count} entries, expected {expected}"
                )));
            }
            let mut level = Vec::with_capacity(count);
            for _ in 0..count {
                level.push(IndexEntry {
                    min_x: r.get_f64()?,
                    min_y: r.get_f64()?,
                    max_x: r.get_f64()?,
                    max_y: r.get_f64()?,
                    t0: r.get_f64()?,
                    t1: r.get_f64()?,
                });
            }
            levels.push(level);
            expected = expected.div_ceil(branching);
        }
        let top_len = levels.last().expect("at least one level").len();
        if top_len > branching {
            return Err(StoreError::Corrupt(format!(
                "index top level holds {top_len} entries, more than the branching factor \
                 {branching}"
            )));
        }
        r.expect_end("index")?;
        Ok(SynopsisIndex { branching, levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream (the store crate is
    /// dependency-free, so no `rand` here).
    struct Xs(u64);
    impl Xs {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn f64(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn random_leaves(rng: &mut Xs, n: usize) -> Vec<IndexEntry> {
        (0..n)
            .map(|i| {
                let x = rng.f64(0.0, 1000.0);
                let y = rng.f64(0.0, 1000.0);
                let t = i as f64 * 10.0 + rng.f64(0.0, 5.0);
                IndexEntry::new(
                    x,
                    y,
                    x + rng.f64(0.0, 200.0),
                    y + rng.f64(0.0, 200.0),
                    t,
                    t + rng.f64(0.0, 30.0),
                )
            })
            .collect()
    }

    fn brute(leaves: &[IndexEntry], probe: &IndexEntry) -> Vec<usize> {
        leaves
            .iter()
            .enumerate()
            .filter(|(_, e)| e.matches(probe))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn candidates_equal_linear_scan() {
        let mut rng = Xs(7);
        for &n in &[0usize, 1, 2, 15, 16, 17, 100, 257, 1000] {
            let leaves = random_leaves(&mut rng, n);
            for &branching in &[2usize, 3, 16] {
                let index = SynopsisIndex::build(leaves.clone(), branching);
                for _ in 0..40 {
                    let x = rng.f64(-100.0, 1200.0);
                    let y = rng.f64(-100.0, 1200.0);
                    let t = rng.f64(-50.0, n as f64 * 10.0 + 50.0);
                    let probe = IndexEntry::new(
                        x,
                        y,
                        x + rng.f64(0.0, 300.0),
                        y + rng.f64(0.0, 300.0),
                        t,
                        t + rng.f64(0.0, 40.0),
                    );
                    assert_eq!(
                        index.candidates(&probe),
                        brute(&leaves, &probe),
                        "n={n} branching={branching}"
                    );
                }
            }
        }
    }

    #[test]
    fn interior_entries_are_exact_unions() {
        let mut rng = Xs(13);
        let leaves = random_leaves(&mut rng, 321);
        let index = SynopsisIndex::build(leaves, 4);
        for level in 1..index.num_levels() {
            for (node, entry) in index.levels[level].iter().enumerate() {
                let below = &index.levels[level - 1];
                let first = node * index.branching;
                let last = (first + index.branching).min(below.len());
                let mut u = IndexEntry::empty();
                for child in &below[first..last] {
                    u.union(child);
                }
                assert_eq!(*entry, u, "level {level} node {node}");
            }
        }
        // Top level is within the branching factor.
        assert!(index.levels.last().unwrap().len() <= index.branching());
    }

    #[test]
    fn degenerate_shapes() {
        // Empty index: no candidates, one (empty) level.
        let empty = SynopsisIndex::build(Vec::new(), 16);
        assert_eq!(empty.num_leaves(), 0);
        assert_eq!(empty.num_levels(), 1);
        assert!(empty
            .candidates(&IndexEntry::new(0.0, 0.0, 1.0, 1.0, 0.0, 1.0))
            .is_empty());
        // Single leaf.
        let one = SynopsisIndex::build(vec![IndexEntry::new(0.0, 0.0, 1.0, 1.0, 0.0, 1.0)], 2);
        assert_eq!(one.num_levels(), 1);
        assert_eq!(
            one.candidates(&IndexEntry::new(0.5, 0.5, 2.0, 2.0, 0.5, 2.0)),
            vec![0]
        );
        // All-tied leaves: every leaf matches or none does.
        let tied = vec![IndexEntry::new(0.0, 0.0, 10.0, 10.0, 0.0, 100.0); 50];
        let index = SynopsisIndex::build(tied, 4);
        let hit = IndexEntry::new(5.0, 5.0, 6.0, 6.0, 50.0, 60.0);
        assert_eq!(index.candidates(&hit), (0..50).collect::<Vec<_>>());
        let miss = IndexEntry::new(11.0, 11.0, 12.0, 12.0, 50.0, 60.0);
        assert!(index.candidates(&miss).is_empty());
        // Empty leaf entries match nothing, even a huge probe.
        let holes = vec![IndexEntry::empty(); 9];
        let index = SynopsisIndex::build(holes, 2);
        let universe = IndexEntry::new(-1e300, -1e300, 1e300, 1e300, -1e300, 1e300);
        assert!(index.candidates(&universe).is_empty());
    }

    #[test]
    fn borders_count_as_intersection() {
        let a = IndexEntry::new(0.0, 0.0, 10.0, 10.0, 0.0, 5.0);
        // Shared edge, shared instant.
        assert!(a.matches(&IndexEntry::new(10.0, 0.0, 20.0, 10.0, 5.0, 9.0)));
        // Disjoint in x only.
        assert!(!a.matches(&IndexEntry::new(10.1, 0.0, 20.0, 10.0, 0.0, 5.0)));
        // Disjoint in time only.
        assert!(!a.matches(&IndexEntry::new(0.0, 0.0, 10.0, 10.0, 5.1, 9.0)));
    }

    #[test]
    fn section_roundtrip_is_bit_identical() {
        let mut rng = Xs(29);
        for &n in &[0usize, 1, 16, 77, 400] {
            let index = SynopsisIndex::build(random_leaves(&mut rng, n), 5);
            let loaded = SynopsisIndex::from_section_bytes(&index.to_section_bytes()).unwrap();
            assert_eq!(loaded, index);
        }
    }

    #[test]
    fn malformed_sections_are_typed() {
        let mut rng = Xs(43);
        let index = SynopsisIndex::build(random_leaves(&mut rng, 40), 4);
        let bytes = index.to_section_bytes();
        // Truncation at every boundary is Truncated or Corrupt.
        for cut in 0..bytes.len() {
            assert!(
                SynopsisIndex::from_section_bytes(&bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            SynopsisIndex::from_section_bytes(&long),
            Err(StoreError::Corrupt(_))
        ));
        // Branching below 2.
        let mut bad = bytes.clone();
        bad[..8].copy_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            SynopsisIndex::from_section_bytes(&bad),
            Err(StoreError::Corrupt(_))
        ));
        // Level-size mismatch: claim one more leaf than level 0 holds.
        let mut bad = bytes;
        bad[8..16].copy_from_slice(&41u64.to_le_bytes());
        assert!(matches!(
            SynopsisIndex::from_section_bytes(&bad),
            Err(StoreError::Corrupt(_))
        ));
    }
}
