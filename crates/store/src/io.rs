//! Injectable storage I/O: one narrow trait over the write-side
//! filesystem operations the PRESS persistence paths perform, with a
//! real implementation and a deterministic fault injector.
//!
//! Every byte PRESS makes durable flows through an [`IoBackend`]:
//! journal appends and fsyncs, checkpoint artifact writes, manifest
//! renames, torn-tail truncation, and garbage collection. The
//! production backend ([`RealIo`]) delegates straight to `std::fs`;
//! the test backend ([`FaultyIo`]) wraps it and injects `ENOSPC`,
//! `EIO`, short writes, and fsync failures at chosen **operation
//! indices** — the disk-side analogue of the kill-at-any-byte-offset
//! harness, and just as deterministic: the same fault plan over the
//! same workload always fails the same operation.
//!
//! Read-side operations are deliberately absent: corrupted or
//! truncated *reads* are already covered by the typed decode errors
//! ([`crate::StoreError`], the WAL's corruption taxonomy); what the
//! fault layer adds is the write-side failure modes that decide
//! whether an acknowledgement was a lie.
//!
//! # Error classification
//!
//! Callers that retry distinguish two classes with
//! [`is_storage_full`]: out-of-space (`ENOSPC`) is **persistent** —
//! retrying cannot free the disk, so the write is refused upward as a
//! typed storage-full error until space returns — while every other
//! I/O failure is treated as **transient** and worth a bounded
//! retry-with-backoff before surfacing as backpressure.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The write-side filesystem operations PRESS durability depends on.
///
/// Object-safe so engines can hold an `Arc<dyn IoBackend>` and tests
/// can swap in [`FaultyIo`]. Every method maps 1:1 to the `std::fs`
/// call of the same shape; implementations may fail any call.
pub trait IoBackend: Send + Sync + fmt::Debug {
    /// Creates (truncating) a file for writing; the handle is also
    /// readable.
    fn create(&self, path: &Path) -> io::Result<File>;
    /// Opens an existing file read-write.
    fn open_rw(&self, path: &Path) -> io::Result<File>;
    /// Writes the whole buffer. A failure may leave a *prefix* of the
    /// buffer in the file (short write) — callers owning framed
    /// formats must repair before writing again.
    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()>;
    /// Flushes file data to stable storage (`fdatasync`).
    fn sync_data(&self, file: &File) -> io::Result<()>;
    /// Fsyncs a directory so renames/creations inside it are durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncates (or extends) an open file to `len` bytes.
    fn set_len(&self, file: &File, len: u64) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a second directory entry `dst` for the existing file
    /// `src` (`std::fs::hard_link`) — the cheap re-link incremental
    /// checkpoints use to carry an unchanged corpus shard into the next
    /// generation without rewriting its bytes.
    fn hard_link(&self, src: &Path, dst: &Path) -> io::Result<()>;
}

/// The production backend: every call delegates to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl IoBackend for RealIo {
    fn create(&self, path: &Path) -> io::Result<File> {
        File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
    }
    fn open_rw(&self, path: &Path) -> io::Result<File> {
        File::options().read(true).write(true).open(path)
    }
    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        file.write_all(buf)
    }
    fn sync_data(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        file.set_len(len)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn hard_link(&self, src: &Path, dst: &Path) -> io::Result<()> {
        std::fs::hard_link(src, dst)
    }
}

/// A shared handle to the real backend.
pub fn real_io() -> Arc<dyn IoBackend> {
    Arc::new(RealIo)
}

/// `ENOSPC` — the out-of-space errno the fault injector raises and
/// [`is_storage_full`] recognizes.
pub const ENOSPC: i32 = 28;
/// `EIO` — the generic device-error errno the fault injector raises.
pub const EIO: i32 = 5;

/// True when an I/O error means the device is out of space — the one
/// failure class retrying cannot fix (only freeing space can).
pub fn is_storage_full(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC) || e.kind() == io::ErrorKind::StorageFull
}

/// Which failure a [`DiskFault`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with `ENOSPC`; nothing is written.
    Enospc,
    /// The operation fails with `EIO`; nothing is written.
    Eio,
    /// A `write_all` writes only the first half of the buffer before
    /// failing with `ENOSPC` — the torn-frame case. On non-write
    /// operations this degrades to a plain `ENOSPC` failure.
    ShortWrite,
    /// The next `sync_data`/`sync_dir` at or after the index fails
    /// with `EIO`; operations of other types pass through unfaulted
    /// (the fault stays armed until a sync arrives).
    SyncFail,
}

impl FaultKind {
    /// All kinds, for building fault matrices.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Enospc,
        FaultKind::Eio,
        FaultKind::ShortWrite,
        FaultKind::SyncFail,
    ];
}

/// One armed fault: fire `kind` at (or from) operation index `at_op`.
///
/// A **one-shot** fault (`sticky: false`) fires on exactly one
/// operation and disarms — the transient-failure model a retry should
/// survive. A **sticky** fault fires on every eligible operation from
/// `at_op` until [`FaultyIo::clear`] — the persistent model (a full
/// disk stays full until space is freed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// Zero-based index into the backend's operation sequence.
    pub at_op: u64,
    /// The failure to inject.
    pub kind: FaultKind,
    /// Keep failing every eligible operation until cleared.
    pub sticky: bool,
}

/// A path-scoped fault: `fault` fires by the operation index counted
/// **only over operations whose path contains `needle`** — the tool
/// for failing one ingest shard's files while its siblings on the same
/// backend stay healthy.
#[derive(Debug)]
struct ScopedFault {
    needle: String,
    fault: DiskFault,
    /// Matching operations observed so far (the scope-local op index).
    seen: u64,
}

/// A deterministic fault-injecting [`IoBackend`].
///
/// Wraps [`RealIo`] and counts every operation; armed [`DiskFault`]s
/// fire by operation index. Because engines drive a deterministic
/// operation sequence from a given input stream, a fault plan is as
/// reproducible as a WAL kill offset.
///
/// Faults come in two scopes: **global** ([`FaultyIo::arm`]) indexed
/// over every operation on the backend, and **path-scoped**
/// ([`FaultyIo::arm_scoped`]) indexed only over operations touching
/// paths that contain a needle substring (e.g. `".s2."` to fault one
/// ingest shard's WAL and corpus files). File-handle operations
/// (`write_all`, `sync_data`, `set_len`) resolve their path through a
/// registry populated by `create`/`open_rw`, so scoped faults follow a
/// file after it is opened.
#[derive(Debug)]
pub struct FaultyIo {
    inner: RealIo,
    ops: AtomicU64,
    injected: AtomicU64,
    faults: Mutex<Vec<DiskFault>>,
    scoped: Mutex<Vec<ScopedFault>>,
    #[cfg(unix)]
    fd_paths: Mutex<HashMap<i32, PathBuf>>,
    #[cfg(not(unix))]
    fd_paths: Mutex<HashMap<u64, PathBuf>>,
}

/// Is this operation a sync (`sync_data`/`sync_dir`)?
#[derive(Clone, Copy, PartialEq)]
enum OpClass {
    Write,
    Sync,
    Other,
}

impl FaultyIo {
    /// A backend armed with `faults`.
    pub fn new(faults: Vec<DiskFault>) -> Arc<FaultyIo> {
        Arc::new(FaultyIo {
            inner: RealIo,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            faults: Mutex::new(faults),
            scoped: Mutex::new(Vec::new()),
            fd_paths: Mutex::new(HashMap::new()),
        })
    }

    /// Arms one more fault.
    pub fn arm(&self, fault: DiskFault) {
        self.faults.lock().expect("fault lock").push(fault);
    }

    /// Arms a fault that only fires on operations whose path contains
    /// `needle`, with `at_op` counted over those matching operations
    /// only. Use a shard-file infix like `".s2."` to degrade exactly
    /// one ingest shard while siblings on the same backend stay clean.
    pub fn arm_scoped(&self, needle: &str, fault: DiskFault) {
        self.scoped.lock().expect("fault lock").push(ScopedFault {
            needle: needle.to_string(),
            fault,
            seen: 0,
        });
    }

    /// Disarms every remaining fault, global and scoped — the "space
    /// was freed / the cable was reseated" transition.
    pub fn clear(&self) {
        self.faults.lock().expect("fault lock").clear();
        self.scoped.lock().expect("fault lock").clear();
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Remembers which path a handle was opened on so later
    /// handle-only operations can resolve it for scoped faults.
    fn register(&self, file: &File, path: &Path) {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            self.fd_paths
                .lock()
                .expect("fault lock")
                .insert(file.as_raw_fd(), path.to_path_buf());
        }
        #[cfg(not(unix))]
        let _ = (file, path);
    }

    /// The path a handle was opened on, if `create`/`open_rw` saw it.
    fn path_of(&self, file: &File) -> Option<PathBuf> {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            return self
                .fd_paths
                .lock()
                .expect("fault lock")
                .get(&file.as_raw_fd())
                .cloned();
        }
        #[cfg(not(unix))]
        {
            let _ = file;
            None
        }
    }

    /// Does `fault` fire on the `op`-th operation of class `class`
    /// within its scope?
    fn fires(fault: &DiskFault, class: OpClass, op: u64) -> bool {
        if fault.kind == FaultKind::SyncFail {
            // Armed at its index, but only a sync trips it.
            class == OpClass::Sync && op >= fault.at_op
        } else if fault.sticky {
            op >= fault.at_op
        } else {
            op == fault.at_op
        }
    }

    /// Advances the op counters (global always; scoped only for
    /// matching paths) and returns the fault to inject on this
    /// operation, if any.
    fn check(&self, class: OpClass, path: Option<&Path>) -> Option<FaultKind> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut hit = None;
        {
            let mut faults = self.faults.lock().expect("fault lock");
            if let Some(idx) = faults.iter().position(|f| Self::fires(f, class, op)) {
                let fault = faults[idx];
                if !fault.sticky {
                    faults.remove(idx);
                }
                hit = Some(fault.kind);
            }
        }
        if let Some(path) = path {
            let p = path.to_string_lossy().into_owned();
            let mut scoped = self.scoped.lock().expect("fault lock");
            let mut fired_one_shot = None;
            for (i, sf) in scoped.iter_mut().enumerate() {
                if !p.contains(&sf.needle) {
                    continue;
                }
                let sop = sf.seen;
                sf.seen += 1; // scope-local index advances even when another fault wins
                if hit.is_none() && fired_one_shot.is_none() && Self::fires(&sf.fault, class, sop) {
                    hit = Some(sf.fault.kind);
                    if !sf.fault.sticky {
                        fired_one_shot = Some(i);
                    }
                }
            }
            if let Some(i) = fired_one_shot {
                scoped.remove(i);
            }
        }
        if hit.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn fail(kind: FaultKind) -> io::Error {
        match kind {
            FaultKind::Enospc | FaultKind::ShortWrite => io::Error::from_raw_os_error(ENOSPC),
            FaultKind::Eio | FaultKind::SyncFail => io::Error::from_raw_os_error(EIO),
        }
    }
}

impl IoBackend for FaultyIo {
    fn create(&self, path: &Path) -> io::Result<File> {
        match self.check(OpClass::Other, Some(path)) {
            Some(kind) => Err(Self::fail(kind)),
            None => {
                let f = self.inner.create(path)?;
                self.register(&f, path);
                Ok(f)
            }
        }
    }
    fn open_rw(&self, path: &Path) -> io::Result<File> {
        match self.check(OpClass::Other, Some(path)) {
            Some(kind) => Err(Self::fail(kind)),
            None => {
                let f = self.inner.open_rw(path)?;
                self.register(&f, path);
                Ok(f)
            }
        }
    }
    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        let path = self.path_of(file);
        match self.check(OpClass::Write, path.as_deref()) {
            Some(FaultKind::ShortWrite) => {
                // The nasty case: a prefix of the buffer reaches the
                // file, then the device fills up.
                let half = buf.len() / 2;
                self.inner.write_all(file, &buf[..half])?;
                Err(Self::fail(FaultKind::ShortWrite))
            }
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.write_all(file, buf),
        }
    }
    fn sync_data(&self, file: &File) -> io::Result<()> {
        let path = self.path_of(file);
        match self.check(OpClass::Sync, path.as_deref()) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.sync_data(file),
        }
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.check(OpClass::Sync, Some(dir)) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.sync_dir(dir),
        }
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.check(OpClass::Other, Some(from)) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.rename(from, to),
        }
    }
    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        let path = self.path_of(file);
        match self.check(OpClass::Other, path.as_deref()) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.set_len(file, len),
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Other, Some(path)) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.remove_file(path),
        }
    }
    fn hard_link(&self, src: &Path, dst: &Path) -> io::Result<()> {
        match self.check(OpClass::Other, Some(dst)) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.hard_link(src, dst),
        }
    }
}

/// Fsyncs `path`'s parent directory (if it has a non-empty one) so the
/// file's creation or rename survives power loss, not just process
/// death.
pub fn sync_parent_dir(io: &dyn IoBackend, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            io.sync_dir(parent)?;
        }
    }
    Ok(())
}

/// The sibling temp-file name `atomic_write_file` stages through:
/// `<file>.tmp` next to the target.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: write a sibling temp file,
/// fsync it, rename over the target, fsync the parent directory. A
/// crash or failure at any step leaves either the complete old file or
/// the complete new one — never a torn artifact — and every failure
/// (including the fsyncs) is surfaced, never ignored. A failed stage
/// removes the temp file best-effort; a leftover `*.tmp` is inert.
pub fn atomic_write_file(io: &dyn IoBackend, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let staged = (|| {
        let mut f = io.create(&tmp)?;
        io.write_all(&mut f, bytes)?;
        io.sync_data(&f)?;
        Ok(())
    })();
    if let Err(e) = staged {
        let _ = io.remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(io, path)
}

/// Repositions a file handle (not an [`IoBackend`] method: seeking is
/// an in-memory cursor move, not a device operation worth faulting).
pub fn seek_to(file: &mut File, offset: u64) -> io::Result<()> {
    file.seek(SeekFrom::Start(offset)).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("press-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn real_io_roundtrips_and_atomic_write_replaces() {
        let dir = tmp_dir("real");
        let io = RealIo;
        let path = dir.join("a.bin");
        atomic_write_file(&io, &path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        atomic_write_file(&io, &path, b"second").expect("rewrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        assert!(!tmp_sibling(&path).exists(), "temp staged file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_shot_fault_fires_exactly_once_at_its_index() {
        let dir = tmp_dir("oneshot");
        let io = FaultyIo::new(vec![DiskFault {
            at_op: 1,
            kind: FaultKind::Eio,
            sticky: false,
        }]);
        let path = dir.join("f.bin");
        let mut f = io.create(&path).expect("op 0 clean");
        let err = io.write_all(&mut f, b"x").expect_err("op 1 faulted");
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert!(!is_storage_full(&err));
        io.write_all(&mut f, b"x").expect("op 2 clean — disarmed");
        assert_eq!(io.injected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sticky_enospc_persists_until_cleared() {
        let dir = tmp_dir("sticky");
        let io = FaultyIo::new(Vec::new());
        let path = dir.join("f.bin");
        let mut f = io.create(&path).expect("create");
        io.arm(DiskFault {
            at_op: 0,
            kind: FaultKind::Enospc,
            sticky: true,
        });
        for _ in 0..3 {
            let err = io.write_all(&mut f, b"x").expect_err("disk full");
            assert!(is_storage_full(&err));
        }
        io.clear();
        io.write_all(&mut f, b"x").expect("space freed");
        assert_eq!(io.injected(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_leaves_a_prefix_then_fails_storage_full() {
        let dir = tmp_dir("short");
        let io = FaultyIo::new(vec![DiskFault {
            at_op: 1,
            kind: FaultKind::ShortWrite,
            sticky: false,
        }]);
        let path = dir.join("f.bin");
        let mut f = io.create(&path).expect("create");
        let err = io.write_all(&mut f, b"0123456789").expect_err("short");
        assert!(is_storage_full(&err));
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"01234",
            "exactly half the buffer landed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_fail_waits_for_a_sync_and_skips_other_ops() {
        let dir = tmp_dir("syncfail");
        let io = FaultyIo::new(vec![DiskFault {
            at_op: 0,
            kind: FaultKind::SyncFail,
            sticky: false,
        }]);
        let path = dir.join("f.bin");
        // Non-sync ops sail past the armed fault.
        let mut f = io.create(&path).expect("create");
        io.write_all(&mut f, b"data").expect("write");
        // The first sync trips it; the next one is clean (one-shot).
        assert!(io.sync_data(&f).is_err());
        io.sync_data(&f).expect("disarmed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scoped_fault_only_hits_matching_paths_and_counts_locally() {
        let dir = tmp_dir("scoped");
        let io = FaultyIo::new(Vec::new());
        // Sticky ENOSPC on anything touching ".s1." from its first
        // matching op; ".s0." files never see it.
        io.arm_scoped(
            ".s1.",
            DiskFault {
                at_op: 1,
                kind: FaultKind::Enospc,
                sticky: true,
            },
        );
        let healthy = dir.join("ingest.0.s0.wal");
        let faulted = dir.join("ingest.0.s1.wal");
        let mut h = io.create(&healthy).expect("healthy create");
        // Matching op 0 (create) passes — the fault is armed at op 1
        // of the *scope*, not of the backend.
        let mut f = io.create(&faulted).expect("scoped op 0 clean");
        io.write_all(&mut h, b"ok").expect("healthy write");
        let err = io
            .write_all(&mut f, b"no")
            .expect_err("scoped op 1 faulted");
        assert!(is_storage_full(&err));
        // Handle-only ops resolve their path through the registry, so
        // the sticky fault follows the open file...
        assert!(io.sync_data(&f).is_err(), "sticky via fd registry");
        // ...while the healthy sibling keeps writing and syncing.
        io.write_all(&mut h, b"ok").expect("healthy write");
        io.sync_data(&h).expect("healthy sync");
        io.clear();
        io.write_all(&mut f, b"yes").expect("cleared");
        assert_eq!(io.injected(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_link_shares_content_and_is_faultable() {
        let dir = tmp_dir("link");
        let src = dir.join("corpus.1.s0.press");
        std::fs::write(&src, b"shard bytes").expect("seed");
        let dst = dir.join("corpus.2.s0.press");
        RealIo.hard_link(&src, &dst).expect("link");
        assert_eq!(std::fs::read(&dst).expect("read"), b"shard bytes");
        let io = FaultyIo::new(vec![DiskFault {
            at_op: 0,
            kind: FaultKind::Eio,
            sticky: false,
        }]);
        let dst2 = dir.join("corpus.3.s0.press");
        assert!(io.hard_link(&src, &dst2).is_err());
        assert!(!dst2.exists());
        io.hard_link(&src, &dst2).expect("disarmed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_failure_leaves_the_old_file_intact() {
        let dir = tmp_dir("atomic-fault");
        let path = dir.join("a.bin");
        atomic_write_file(&RealIo, &path, b"old").expect("seed");
        // Fault each stage of the atomic write in turn: create(0),
        // write(1), sync(2), rename(3).
        for at_op in 0..4 {
            let io = FaultyIo::new(vec![DiskFault {
                at_op,
                kind: FaultKind::Enospc,
                sticky: false,
            }]);
            // SyncFail-free plan: op 2 is sync_data, Enospc fails it too.
            let err = atomic_write_file(io.as_ref(), &path, b"new").expect_err("stage faulted");
            assert!(is_storage_full(&err), "stage {at_op}");
            assert_eq!(
                std::fs::read(&path).expect("read"),
                b"old",
                "stage {at_op}: target untouched"
            );
        }
        atomic_write_file(&RealIo, &path, b"new").expect("clean retry");
        assert_eq!(std::fs::read(&path).expect("read"), b"new");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
