//! # press-store
//!
//! The on-disk artifact tier of PRESS: **one** versioned, checksummed,
//! little-endian binary container format shared by every artifact the
//! pipeline produces — road networks, dense SP tables, lazy-cache hot
//! trees, contraction hierarchies, trained HSC models, and block-oriented
//! compressed-trajectory stores.
//!
//! # File layout
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header (24 B): magic "PRSSTORE" · format version u32 ·     │
//! │                artifact kind u32 · section count u32 ·     │
//! │                CRC32 of the section table u32              │
//! ├────────────────────────────────────────────────────────────┤
//! │ section table: one 40 B entry per section —                │
//! │   name (16 B, NUL-padded UTF-8) · offset u64 · len u64 ·   │
//! │   CRC32 of the payload u32 · reserved u32                  │
//! ├────────────────────────────────────────────────────────────┤
//! │ section payloads, back to back                             │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian; `f64` values are stored as their IEEE
//! bit patterns (`to_bits`), so floating-point round-trips are exact and
//! loaded structures answer **bit-identically** to freshly built ones.
//!
//! # Integrity and versioning
//!
//! Every access is validated: a wrong magic is [`StoreError::BadMagic`],
//! an unknown format version is [`StoreError::UnsupportedVersion`], a
//! short file is [`StoreError::Truncated`], a payload whose CRC32 does
//! not match its table entry is [`StoreError::ChecksumMismatch`] — typed
//! errors in all cases, never a panic. The format version covers the
//! container layout; each artifact additionally carries its own schema
//! inside its sections and validates semantic invariants on load.
//!
//! Versioning policy: readers accept exactly [`FORMAT_VERSION`]. Layout
//! changes bump the version; additive changes (new sections) do not,
//! because unknown sections are simply ignored by older readers.
//!
//! # Access model
//!
//! A [`StoreWriter`] buffers named sections and emits the file in one
//! `write`; [`StoreWriter::section_aligned`] starts a section on an
//! 8-byte boundary (zero gap bytes pad the previous payload — invisible
//! to readers, which address sections only through the table). A
//! [`StoreFile`] opens either **owned** ([`StoreFile::open`], one
//! contiguous read, payload CRC checked on every access) or **mapped**
//! ([`StoreFile::open_mapped`], `mmap`/aligned-arena via [`mapping`],
//! open cost O(header + table), payload CRC checked lazily **once** on
//! a section's first touch and the verdict cached). Either way every
//! access is validated before bytes are handed out, and
//! [`StoreFile::flat_section`] lends fixed-width sections as typed
//! [`FlatSlice`]s — zero-copy borrows of the backing when alignment
//! permits, decoded copies otherwise. [`ByteWriter`]/[`ByteReader`]
//! provide the bounds- and endianness-checked primitive encoding used
//! inside sections.
//!
//! ```
//! use press_store::{kind, ByteWriter, StoreFile, StoreWriter};
//!
//! // Write a two-section artifact ...
//! let mut meta = ByteWriter::new();
//! meta.put_u64(3);
//! meta.put_f64(2.5);
//! let mut w = StoreWriter::new(kind::META);
//! w.section("meta", meta.into_bytes());
//! w.section("payload", vec![1, 2, 3]);
//!
//! // ... and read it back, every access CRC-checked and typed.
//! let f = StoreFile::from_bytes(w.to_bytes()).unwrap();
//! f.expect_kind(kind::META).unwrap();
//! let mut r = f.reader("meta").unwrap();
//! assert_eq!(r.get_u64().unwrap(), 3);
//! assert_eq!(r.get_f64().unwrap(), 2.5);
//! assert_eq!(f.section("payload").unwrap(), &[1, 2, 3]);
//! ```
//!
//! The [`SynopsisIndex`] module layers a packed block-skipping
//! hierarchy on top of this container (the trajectory store's
//! additive `"index"` section); see [`index`] for its format and
//! correctness contract.

use std::borrow::Cow;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

mod crc32;
pub mod index;
pub mod io;
pub mod mapping;

pub use crc32::crc32;
pub use index::{IndexEntry, SynopsisIndex, DEFAULT_BRANCHING};
pub use io::{
    atomic_write_file, is_storage_full, real_io, DiskFault, FaultKind, FaultyIo, IoBackend, RealIo,
};
pub use mapping::{map_file, ArenaMapping, Mapping};

/// File magic, first 8 bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"PRSSTORE";

/// Container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes per section-table entry (name 16 + offset 8 + len 8 + crc 4 +
/// reserved 4).
const DIR_ENTRY_BYTES: usize = 40;

/// Header bytes before the section table.
const HEADER_BYTES: usize = 24;

/// Maximum bytes of a section name (NUL-padded in the table).
pub const MAX_SECTION_NAME: usize = 16;

/// Artifact kind ids, stored in the header so a reader can refuse to
/// interpret (say) a trajectory store as a contraction hierarchy.
pub mod kind {
    /// A [`RoadNetwork`](../../press_network/graph/struct.RoadNetwork.html).
    pub const NETWORK: u32 = 1;
    /// The dense all-pair `SpTable`.
    pub const SP_TABLE: u32 = 2;
    /// Serialized `LazySpCache` hot trees (config + resident trees).
    pub const SP_LAZY_TREES: u32 = 3;
    /// A built `ContractionHierarchy`.
    pub const CONTRACTION_HIERARCHY: u32 = 4;
    /// A trained HSC model (trie + Huffman + per-node tables).
    pub const HSC_MODEL: u32 = 5;
    /// A block-oriented compressed-trajectory store.
    pub const TRAJECTORY_STORE: u32 = 6;
    /// Free-form store-directory metadata (build timings etc.).
    pub const META: u32 = 7;
    /// A 2-hop hub labeling built from a contraction-hierarchy order.
    pub const HUB_LABELS: u32 = 8;
}

/// Errors raised by the artifact tier. Every corruption mode maps to a
/// typed variant; loading never panics on bad bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem error, with the underlying message.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The container format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The artifact kind in the header is not the one the caller expects.
    WrongKind {
        /// Kind the caller asked for (see [`kind`]).
        expected: u32,
        /// Kind found in the header.
        found: u32,
    },
    /// The file ends before the declared structure does.
    Truncated {
        /// What was being read when the bytes ran out.
        what: String,
    },
    /// A section payload does not match its recorded CRC32.
    ChecksumMismatch {
        /// Name of the failing section (or `"section table"`).
        section: String,
    },
    /// A required section is absent.
    MissingSection(String),
    /// The bytes decoded but violate a semantic invariant of the artifact.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store I/O error: {msg}"),
            StoreError::BadMagic => write!(f, "not a PRESS store file (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported store format version {found} (this build reads version {supported})"
            ),
            StoreError::WrongKind { expected, found } => write!(
                f,
                "wrong artifact kind: expected {expected}, file holds {found}"
            ),
            StoreError::Truncated { what } => {
                write!(f, "store file truncated while reading {what}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            StoreError::MissingSection(name) => write!(f, "missing section '{name}'"),
            StoreError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Buffers named sections and emits one container file.
#[derive(Debug)]
pub struct StoreWriter {
    kind: u32,
    sections: Vec<(String, Vec<u8>, bool)>,
    // O(1) duplicate detection — a trajectory store writes one section
    // per block, so a linear scan per insert would be quadratic in
    // corpus size.
    names: std::collections::HashSet<String>,
}

impl StoreWriter {
    /// New writer for an artifact of the given [`kind`].
    pub fn new(kind: u32) -> Self {
        StoreWriter {
            kind,
            sections: Vec::new(),
            names: std::collections::HashSet::new(),
        }
    }

    fn push_section(&mut self, name: &str, payload: Vec<u8>, aligned: bool) {
        assert!(
            !name.is_empty() && name.len() <= MAX_SECTION_NAME,
            "section name '{name}' must be 1..={MAX_SECTION_NAME} bytes"
        );
        assert!(
            self.names.insert(name.to_string()),
            "duplicate section name '{name}'"
        );
        self.sections.push((name.to_string(), payload, aligned));
    }

    /// Adds a section. Names are programmer-chosen constants; they must
    /// be unique, non-empty, and at most [`MAX_SECTION_NAME`] bytes.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        self.push_section(name, payload, false);
        self
    }

    /// Adds a section whose payload starts on an 8-byte boundary in the
    /// emitted file, padding the gap before it with zero bytes. The
    /// padding lives *between* payloads and is addressed by no table
    /// entry, so readers — including pre-alignment ones — never see it.
    /// Flat fixed-width sections use this so a mapped open can lend the
    /// payload directly as a typed slice.
    pub fn section_aligned(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        self.push_section(name, payload, true);
        self
    }

    /// Serializes the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_len = self.sections.len() * DIR_ENTRY_BYTES;
        // HEADER_BYTES and DIR_ENTRY_BYTES are both multiples of 8, so
        // the first payload always starts aligned; padding is only ever
        // needed after an unaligned-length payload.
        let mut offset = (HEADER_BYTES + table_len) as u64;
        let mut table = Vec::with_capacity(table_len);
        for (name, payload, aligned) in &self.sections {
            if *aligned {
                offset = offset.next_multiple_of(8);
            }
            let mut name_bytes = [0u8; MAX_SECTION_NAME];
            name_bytes[..name.len()].copy_from_slice(name.as_bytes());
            table.extend_from_slice(&name_bytes);
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&crc32(payload).to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            offset += payload.len() as u64;
        }
        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&table).to_le_bytes());
        out.extend_from_slice(&table);
        for (_, payload, aligned) in &self.sections {
            if *aligned {
                out.resize(out.len().next_multiple_of(8), 0);
            }
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the container to `path` (parent directories must exist)
    /// atomically: staged through a sibling temp file, fsynced, renamed
    /// over the target, parent directory fsynced. A crash or I/O fault
    /// at any step leaves either the old complete file or the new one,
    /// and every failure — including the fsyncs — surfaces as a typed
    /// [`StoreError::Io`].
    pub fn write_to(&self, path: &Path) -> Result<()> {
        self.write_to_with(&RealIo, path)
    }

    /// [`StoreWriter::write_to`] through an explicit [`IoBackend`]
    /// (fault injection in tests, real filesystem in production).
    pub fn write_to_with(&self, io: &dyn IoBackend, path: &Path) -> Result<()> {
        atomic_write_file(io, path, &self.to_bytes())?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// One parsed section-table entry.
#[derive(Debug, Clone)]
struct SectionEntry {
    name: String,
    offset: usize,
    len: usize,
    crc: u32,
}

/// The byte storage behind a [`StoreFile`]: a heap buffer for owned
/// loads, a [`Mapping`] for zero-copy opens. Behind an `Arc` so typed
/// [`FlatSlice`] views can keep the bytes alive independently of the
/// `StoreFile` handle.
enum Backing {
    Owned(Vec<u8>),
    Mapped(Box<dyn Mapping>),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Owned(v) => v,
            Backing::Mapped(m) => m.bytes(),
        }
    }
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backing::Owned(v) => write!(f, "Backing::Owned({} bytes)", v.len()),
            Backing::Mapped(m) => write!(f, "Backing::Mapped({m:?})"),
        }
    }
}

/// Lazy per-section CRC verdicts (mapped opens only): one tri-state per
/// table entry, flipped exactly once on the section's first touch.
const CRC_UNCHECKED: u8 = 0;
const CRC_OK: u8 = 1;
const CRC_BAD: u8 = 2;

/// A loaded container file: owns (or maps) the raw bytes, hands out
/// CRC-checked payload slices.
#[derive(Debug)]
pub struct StoreFile {
    kind: u32,
    data: Arc<Backing>,
    table: Vec<SectionEntry>,
    // name → table position. Section lookups happen per block decode on
    // the query path, so they must not scan a 10^5-entry directory.
    lookup: std::collections::HashMap<String, usize>,
    /// `Some` for mapped opens: payload CRC is validated lazily, once
    /// per section, on first touch (the whole point of a mapped open is
    /// not reading every byte up front). `None` for owned loads, which
    /// keep the historical eager semantics — CRC on **every** access.
    lazy_crc: Option<Vec<AtomicU8>>,
}

impl StoreFile {
    /// Ingests a container from raw bytes, validating magic, version,
    /// the section table's CRC, and every entry's bounds.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self> {
        Self::from_backing(Backing::Owned(data), false)
    }

    /// Opens a container through [`map_file`] — `mmap` where available,
    /// the aligned arena otherwise. The header and section table are
    /// validated eagerly (they are one page); payload CRCs are deferred
    /// to each section's first touch and the verdict cached, so open
    /// cost is O(header + table), not O(file).
    pub fn open_mapped(path: &Path) -> Result<Self> {
        Self::from_backing(Backing::Mapped(map_file(path)?), true)
    }

    fn from_backing(backing: Backing, lazy: bool) -> Result<Self> {
        let data = backing.bytes();
        if data.len() < HEADER_BYTES {
            return Err(StoreError::Truncated {
                what: "header".into(),
            });
        }
        if data[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = u32::from_le_bytes(data[12..16].try_into().unwrap());
        let count = u32::from_le_bytes(data[16..20].try_into().unwrap()) as usize;
        let table_crc = u32::from_le_bytes(data[20..24].try_into().unwrap());
        let table_end = HEADER_BYTES + count.saturating_mul(DIR_ENTRY_BYTES);
        if table_end > data.len() {
            return Err(StoreError::Truncated {
                what: "section table".into(),
            });
        }
        let table_bytes = &data[HEADER_BYTES..table_end];
        if crc32(table_bytes) != table_crc {
            return Err(StoreError::ChecksumMismatch {
                section: "section table".into(),
            });
        }
        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let e = &table_bytes[i * DIR_ENTRY_BYTES..(i + 1) * DIR_ENTRY_BYTES];
            let name_end = e[..MAX_SECTION_NAME]
                .iter()
                .position(|&b| b == 0)
                .unwrap_or(MAX_SECTION_NAME);
            let name = std::str::from_utf8(&e[..name_end])
                .map_err(|_| StoreError::Corrupt("section name is not UTF-8".into()))?
                .to_string();
            let offset = u64::from_le_bytes(e[16..24].try_into().unwrap());
            let len = u64::from_le_bytes(e[24..32].try_into().unwrap());
            let crc = u32::from_le_bytes(e[32..36].try_into().unwrap());
            let end = offset.checked_add(len).ok_or(StoreError::Truncated {
                what: format!("section '{name}'"),
            })?;
            if end > data.len() as u64 {
                return Err(StoreError::Truncated {
                    what: format!("section '{name}'"),
                });
            }
            table.push(SectionEntry {
                name,
                offset: offset as usize,
                len: len as usize,
                crc,
            });
        }
        let mut lookup = std::collections::HashMap::with_capacity(table.len());
        for (i, e) in table.iter().enumerate() {
            // First entry wins on (malformed) duplicate names, matching
            // the previous first-match scan.
            lookup.entry(e.name.clone()).or_insert(i);
        }
        let lazy_crc = lazy.then(|| {
            (0..table.len())
                .map(|_| AtomicU8::new(CRC_UNCHECKED))
                .collect()
        });
        Ok(StoreFile {
            kind,
            data: Arc::new(backing),
            table,
            lookup,
            lazy_crc,
        })
    }

    /// Opens a container file (one contiguous read).
    pub fn open(path: &Path) -> Result<Self> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// True when this file was opened through [`StoreFile::open_mapped`]
    /// (lazy per-section CRC semantics).
    pub fn is_mapped(&self) -> bool {
        self.lazy_crc.is_some()
    }

    /// Artifact kind from the header (see [`kind`]).
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Errors unless the artifact kind matches.
    pub fn expect_kind(&self, expected: u32) -> Result<()> {
        if self.kind != expected {
            return Err(StoreError::WrongKind {
                expected,
                found: self.kind,
            });
        }
        Ok(())
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.table.iter().map(|e| e.name.as_str())
    }

    /// True when a section exists.
    pub fn has_section(&self, name: &str) -> bool {
        self.lookup.contains_key(name)
    }

    /// CRC-checked payload of a section. Owned loads check the CRC on
    /// every access; mapped opens check it once, on the section's first
    /// touch, and cache the verdict (a cached failure keeps failing).
    pub fn section(&self, name: &str) -> Result<&[u8]> {
        let idx = *self
            .lookup
            .get(name)
            .ok_or_else(|| StoreError::MissingSection(name.to_string()))?;
        let entry = &self.table[idx];
        let payload = &self.data.bytes()[entry.offset..entry.offset + entry.len];
        let ok = match &self.lazy_crc {
            None => crc32(payload) == entry.crc,
            Some(states) => match states[idx].load(Ordering::Acquire) {
                CRC_OK => true,
                CRC_BAD => false,
                _ => {
                    // Concurrent first touches both compute the same
                    // verdict over the same immutable bytes; the double
                    // store is benign.
                    let ok = crc32(payload) == entry.crc;
                    states[idx].store(if ok { CRC_OK } else { CRC_BAD }, Ordering::Release);
                    ok
                }
            },
        };
        if !ok {
            return Err(StoreError::ChecksumMismatch {
                section: name.to_string(),
            });
        }
        Ok(payload)
    }

    /// Byte length of a section, if present (no CRC touch).
    pub fn section_len(&self, name: &str) -> Option<usize> {
        self.lookup.get(name).map(|&i| self.table[i].len)
    }

    /// A [`ByteReader`] over a CRC-checked section.
    pub fn reader(&self, name: &str) -> Result<ByteReader<'_>> {
        Ok(ByteReader::new(self.section(name)?))
    }

    /// Lends a fixed-width section as a typed [`FlatSlice`]: a zero-copy
    /// borrow of this file's backing when the payload is aligned for `T`
    /// (mapped flat sections are written 8-byte aligned, so this is the
    /// common case), a decoded copy otherwise — answers are identical
    /// either way. The section is CRC-validated first under this file's
    /// access mode (eager or first-touch), and a length that is not a
    /// whole number of elements is typed [`StoreError::Corrupt`].
    pub fn flat_section<T: FlatPod>(&self, name: &str) -> Result<FlatSlice<T>> {
        let bytes = self.section(name)?;
        let width = std::mem::size_of::<T>();
        if bytes.len() % width != 0 {
            return Err(StoreError::Corrupt(format!(
                "section '{name}' length {} is not a multiple of element width {width}",
                bytes.len()
            )));
        }
        let n = bytes.len() / width;
        #[cfg(target_endian = "little")]
        if (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
            // SAFETY: `T: FlatPod` guarantees no padding and no invalid
            // bit patterns; alignment was just checked; the bytes are
            // immutable and outlive the slice because the returned view
            // clones the `Arc` on the backing. The 'static lifetime is a
            // private fiction: `FlatSlice` never lends the slice beyond
            // its own lifetime.
            let slice = unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, n) };
            let slice: &'static [T] = unsafe { std::mem::transmute::<&[T], &'static [T]>(slice) };
            return Ok(FlatSlice {
                _backing: Some(self.data.clone()),
                data: Cow::Borrowed(slice),
            });
        }
        let mut out = Vec::with_capacity(n);
        for chunk in bytes.chunks_exact(width) {
            out.push(T::from_le_chunk(chunk));
        }
        Ok(FlatSlice {
            _backing: None,
            data: Cow::Owned(out),
        })
    }
}

// ---------------------------------------------------------------------
// Typed flat-section views
// ---------------------------------------------------------------------

/// Element types that may be viewed directly over little-endian flat
/// section bytes.
///
/// # Safety
///
/// Implementors must be plain fixed-width data: `Copy`, no padding
/// bytes, no invalid bit patterns, and an in-memory representation that
/// on little-endian hosts equals the on-disk little-endian encoding
/// produced by [`FlatPod::from_le_chunk`]'s inverse. Primitive numeric
/// types qualify; structs only with `#[repr(C)]` and exclusively
/// `FlatPod` fields.
pub unsafe trait FlatPod: Copy + Send + Sync + 'static {
    /// Decodes one element from exactly `size_of::<Self>()` little-endian
    /// bytes (the portable fallback when zero-copy borrowing is not
    /// possible — misaligned payload or big-endian host).
    fn from_le_chunk(chunk: &[u8]) -> Self;
}

unsafe impl FlatPod for u32 {
    fn from_le_chunk(chunk: &[u8]) -> Self {
        u32::from_le_bytes(chunk.try_into().unwrap())
    }
}

unsafe impl FlatPod for u64 {
    fn from_le_chunk(chunk: &[u8]) -> Self {
        u64::from_le_bytes(chunk.try_into().unwrap())
    }
}

unsafe impl FlatPod for f64 {
    fn from_le_chunk(chunk: &[u8]) -> Self {
        f64::from_bits(u64::from_le_bytes(chunk.try_into().unwrap()))
    }
}

/// A borrowed-or-owned typed array over a flat section: `Cow::Borrowed`
/// straight into the file's mapped (or owned) backing when alignment
/// permits — the zero-copy serving tier — and `Cow::Owned` otherwise
/// (including every slice built in memory). Dereferences to `[T]`, so
/// call sites index it exactly like the `Vec` it replaces.
pub struct FlatSlice<T: FlatPod> {
    /// Keeps the backing bytes alive for the borrowed case (`None` for
    /// owned data); `data`'s 'static borrow is only valid while this
    /// handle holds the `Arc`.
    _backing: Option<Arc<Backing>>,
    data: Cow<'static, [T]>,
}

impl<T: FlatPod> FlatSlice<T> {
    /// An owned slice (the build path and the portable fallback).
    pub fn from_vec(v: Vec<T>) -> Self {
        FlatSlice {
            _backing: None,
            data: Cow::Owned(v),
        }
    }

    /// The elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// True when this view borrows the file backing (zero-copy engaged).
    pub fn is_borrowed(&self) -> bool {
        matches!(self.data, Cow::Borrowed(_))
    }
}

impl<T: FlatPod> From<Vec<T>> for FlatSlice<T> {
    fn from(v: Vec<T>) -> Self {
        FlatSlice::from_vec(v)
    }
}

impl<T: FlatPod> Default for FlatSlice<T> {
    fn default() -> Self {
        FlatSlice::from_vec(Vec::new())
    }
}

impl<T: FlatPod> std::ops::Deref for FlatSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: FlatPod> Clone for FlatSlice<T> {
    fn clone(&self) -> Self {
        FlatSlice {
            _backing: self._backing.clone(),
            data: match &self.data {
                Cow::Borrowed(s) => Cow::Borrowed(s),
                Cow::Owned(v) => Cow::Owned(v.clone()),
            },
        }
    }
}

impl<T: FlatPod + PartialEq> PartialEq for FlatSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: FlatPod + fmt::Debug> fmt::Debug for FlatSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlatSlice({}, {} elems)",
            if self.is_borrowed() {
                "borrowed"
            } else {
                "owned"
            },
            self.len()
        )
    }
}

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

/// Little-endian primitive encoder for section payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with reserved capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an unsigned LEB128 varint (1 byte for values < 128, 7
    /// payload bits per byte thereafter). The codec behind the
    /// delta-compressed id sections: monotone id arrays (CSR indices,
    /// sorted hub lists, mostly-sequential arc endpoints) delta down to
    /// tiny values, so one byte per element is the common case.
    pub fn put_uvarint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Appends a signed varint (zigzag + LEB128), for deltas that can go
    /// either way (arc tails between consecutive shortcut arcs, unpack
    /// children relative to their parent id).
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes into the payload vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a section payload.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Truncated { what: what.into() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads a `u64` and converts it to `usize`, erroring on overflow
    /// (32-bit hosts) or on values beyond `limit` — a cheap way to reject
    /// absurd corrupted counts before allocating.
    pub fn get_len(&mut self, limit: usize, what: &str) -> Result<usize> {
        let v = self.get_u64()?;
        let v = usize::try_from(v)
            .map_err(|_| StoreError::Corrupt(format!("{what} count {v} overflows usize")))?;
        if v > limit {
            return Err(StoreError::Corrupt(format!(
                "{what} count {v} exceeds plausible limit {limit}"
            )));
        }
        Ok(v)
    }

    /// Reads an `f64` from its IEEE bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an unsigned LEB128 varint (see [`ByteWriter::put_uvarint`]).
    /// Over-long encodings (more than 10 bytes, or bits beyond the 64th)
    /// are corruption, not extensions.
    pub fn get_uvarint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.take(1, "varint")?[0];
            let payload = (b & 0x7F) as u64;
            if shift == 63 && payload > 1 {
                return Err(StoreError::Corrupt("varint overflows u64".into()));
            }
            v |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(StoreError::Corrupt("varint longer than 10 bytes".into()));
            }
        }
    }

    /// Reads a signed zigzag varint (see [`ByteWriter::put_ivarint`]).
    pub fn get_ivarint(&mut self) -> Result<i64> {
        let z = self.get_uvarint()?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n, "bytes")
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the payload was consumed exactly.
    pub fn expect_end(&self, what: &str) -> Result<()> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after {what}",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreWriter {
        let mut w = StoreWriter::new(kind::META);
        let mut a = ByteWriter::new();
        a.put_u32(7);
        a.put_f64(1.5);
        w.section("meta", a.into_bytes());
        w.section("payload", vec![1, 2, 3, 4, 5]);
        w
    }

    #[test]
    fn roundtrip() {
        let bytes = sample().to_bytes();
        let f = StoreFile::from_bytes(bytes).unwrap();
        assert_eq!(f.kind(), kind::META);
        f.expect_kind(kind::META).unwrap();
        assert_eq!(
            f.expect_kind(kind::NETWORK),
            Err(StoreError::WrongKind {
                expected: kind::NETWORK,
                found: kind::META
            })
        );
        assert_eq!(f.section_names().collect::<Vec<_>>(), ["meta", "payload"]);
        assert!(f.has_section("meta") && !f.has_section("nope"));
        let mut r = f.reader("meta").unwrap();
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        r.expect_end("meta").unwrap();
        assert_eq!(f.section("payload").unwrap(), &[1, 2, 3, 4, 5]);
        assert!(matches!(
            f.section("nope"),
            Err(StoreError::MissingSection(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("press-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.press");
        sample().write_to(&path).unwrap();
        let f = StoreFile::open(&path).unwrap();
        assert_eq!(f.section("payload").unwrap(), &[1, 2, 3, 4, 5]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            StoreFile::from_bytes(bytes).unwrap_err(),
            StoreError::BadMagic
        );
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99; // version lives at offset 8
        assert_eq!(
            StoreFile::from_bytes(bytes).unwrap_err(),
            StoreError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn truncation_is_typed_everywhere() {
        let bytes = sample().to_bytes();
        // Every possible truncation point yields a typed error or — when
        // the cut only removes payload bytes — a checksum/bounds error at
        // section access time. Never a panic.
        for cut in 0..bytes.len() {
            match StoreFile::from_bytes(bytes[..cut].to_vec()) {
                Ok(f) => {
                    for name in ["meta", "payload"] {
                        match f.section(name) {
                            Ok(_) | Err(StoreError::ChecksumMismatch { .. }) => {}
                            Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                        }
                    }
                }
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::BadMagic
                    | StoreError::UnsupportedVersion { .. },
                ) => {}
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn payload_bitflip_fails_checksum() {
        let bytes = sample().to_bytes();
        let full = StoreFile::from_bytes(bytes.clone()).unwrap();
        let payload_start = bytes.len() - 5; // "payload" section is last
        for i in payload_start..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            let f = StoreFile::from_bytes(corrupted).unwrap();
            assert_eq!(
                f.section("payload").unwrap_err(),
                StoreError::ChecksumMismatch {
                    section: "payload".into()
                }
            );
            // The untouched section still reads fine.
            assert_eq!(f.section("meta").unwrap(), full.section("meta").unwrap());
        }
    }

    #[test]
    fn table_bitflip_fails_table_checksum() {
        let mut bytes = sample().to_bytes();
        bytes[HEADER_BYTES + 3] ^= 0x01; // inside the first table entry
        assert_eq!(
            StoreFile::from_bytes(bytes).unwrap_err(),
            StoreError::ChecksumMismatch {
                section: "section table".into()
            }
        );
    }

    #[test]
    fn empty_container_is_valid() {
        let w = StoreWriter::new(kind::META);
        let f = StoreFile::from_bytes(w.to_bytes()).unwrap();
        assert_eq!(f.section_names().count(), 0);
    }

    #[test]
    fn byte_reader_bounds_and_limits() {
        let mut w = ByteWriter::with_capacity(16);
        w.put_u8(1);
        w.put_u16(2);
        w.put_u64(1 << 40);
        assert_eq!(w.len(), 11);
        assert!(!w.is_empty());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u16().unwrap(), 2);
        assert!(matches!(
            r.clone().get_len(1000, "trees"),
            Err(StoreError::Corrupt(_))
        ));
        assert_eq!(r.get_len(1 << 41, "trees").unwrap(), 1 << 40);
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.get_u32(), Err(StoreError::Truncated { .. })));
        assert!(matches!(
            ByteReader::new(&bytes[..3]).get_f64(),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn varints_roundtrip_and_reject_overlong() {
        let mut w = ByteWriter::new();
        let unsigned = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let signed = [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            -65,
            i32::MAX as i64,
            i64::MIN,
            i64::MAX,
        ];
        for &v in &unsigned {
            w.put_uvarint(v);
        }
        for &v in &signed {
            w.put_ivarint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &unsigned {
            assert_eq!(r.get_uvarint().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.get_ivarint().unwrap(), v);
        }
        r.expect_end("varints").unwrap();
        // Small values are one byte; u64::MAX is the 10-byte ceiling.
        let mut w = ByteWriter::new();
        w.put_uvarint(127);
        assert_eq!(w.len(), 1);
        let mut w = ByteWriter::new();
        w.put_uvarint(u64::MAX);
        assert_eq!(w.len(), 10);
        // Truncation mid-varint is typed.
        let mut w = ByteWriter::new();
        w.put_uvarint(1 << 40);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes[..2]).get_uvarint(),
            Err(StoreError::Truncated { .. })
        ));
        // An 11-byte continuation chain is corruption, not a value.
        let overlong = [0x80u8; 11];
        assert!(matches!(
            ByteReader::new(&overlong).get_uvarint(),
            Err(StoreError::Corrupt(_))
        ));
        // A 10th byte carrying bits beyond the 64th is corruption.
        let mut bad = [0x80u8; 10];
        bad[9] = 0x02;
        assert!(matches!(
            ByteReader::new(&bad).get_uvarint(),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("press-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn aligned_sections_start_on_8_byte_boundaries() {
        let mut w = StoreWriter::new(kind::META);
        w.section("odd", vec![9; 5]); // 5 bytes: next offset would be misaligned
        w.section_aligned("flat", (0u32..7).flat_map(|v| v.to_le_bytes()).collect());
        w.section("tail", vec![1, 2, 3]);
        let bytes = w.to_bytes();
        let f = StoreFile::from_bytes(bytes).unwrap();
        assert_eq!(f.section("odd").unwrap(), &[9; 5]);
        assert_eq!(f.section("tail").unwrap(), &[1, 2, 3]);
        let flat = f.section("flat").unwrap();
        assert_eq!(flat.len(), 28);
        // The aligned payload's *file offset* is a multiple of 8; the
        // gap bytes before it are invisible to section reads.
        let base = f.section("odd").unwrap().as_ptr() as usize - f.data.bytes().as_ptr() as usize;
        let flat_off = flat.as_ptr() as usize - f.data.bytes().as_ptr() as usize;
        assert_eq!(flat_off % 8, 0);
        assert!(flat_off > base);
    }

    #[test]
    fn mapped_open_checks_crc_lazily_and_caches_the_verdict() {
        let path = temp_path("lazy-crc.press");
        sample().write_to(&path).unwrap();
        // Flip one payload byte of the trailing "payload" section on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let f = StoreFile::open_mapped(&path).unwrap(); // open itself succeeds
        assert!(f.is_mapped());
        // First touch surfaces the typed error; so does every retry
        // (the verdict is cached, not forgotten).
        for _ in 0..2 {
            assert_eq!(
                f.section("payload").unwrap_err(),
                StoreError::ChecksumMismatch {
                    section: "payload".into()
                }
            );
        }
        // The untouched section reads fine, and repeats served from the
        // cached OK verdict stay fine.
        let meta = f.section("meta").unwrap().to_vec();
        assert_eq!(f.section("meta").unwrap(), &meta[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_open_reads_identically_to_owned() {
        let path = temp_path("mapped-eq.press");
        let mut w = StoreWriter::new(kind::META);
        w.section("a", vec![1, 2, 3]);
        w.section_aligned("b", (0u64..9).flat_map(|v| v.to_le_bytes()).collect());
        w.write_to(&path).unwrap();
        let owned = StoreFile::open(&path).unwrap();
        let mapped = StoreFile::open_mapped(&path).unwrap();
        assert!(!owned.is_mapped());
        for name in ["a", "b"] {
            assert_eq!(owned.section(name).unwrap(), mapped.section(name).unwrap());
            assert_eq!(owned.section_len(name), mapped.section_len(name));
        }
        assert_eq!(owned.section_len("nope"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flat_sections_borrow_when_aligned_and_copy_otherwise() {
        let path = temp_path("flat.press");
        let vals: Vec<u32> = (0..100u32)
            .map(|i| i.wrapping_mul(2654435761) % 7919)
            .collect();
        let dists: Vec<f64> = (0..50).map(|i| i as f64 * 1.5 - 3.0).collect();
        let mut w = StoreWriter::new(kind::META);
        w.section("skew", vec![0xAB; 3]); // forces a gap before each aligned section
        w.section_aligned("ids", vals.iter().flat_map(|v| v.to_le_bytes()).collect());
        w.section_aligned(
            "dists",
            dists
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes())
                .collect(),
        );
        w.section("ids_u", vals.iter().flat_map(|v| v.to_le_bytes()).collect());
        w.write_to(&path).unwrap();
        let mapped = StoreFile::open_mapped(&path).unwrap();
        let ids: FlatSlice<u32> = mapped.flat_section("ids").unwrap();
        let ds: FlatSlice<f64> = mapped.flat_section("dists").unwrap();
        assert_eq!(ids.as_slice(), &vals[..]);
        assert_eq!(ds.as_slice(), &dists[..]);
        assert!(ids.is_borrowed() && ds.is_borrowed());
        // The unaligned twin decodes to identical values via the copy
        // fallback ("ids_u" starts right after "dists" — offset % 4 may
        // happen to align, so only assert value equality there).
        let ids_u: FlatSlice<u32> = mapped.flat_section("ids_u").unwrap();
        assert_eq!(ids_u.as_slice(), ids.as_slice());
        // A length that is not a whole number of elements is typed.
        assert!(matches!(
            mapped.flat_section::<u64>("skew"),
            Err(StoreError::Corrupt(_))
        ));
        // Owned construction and equality plumbing.
        let built = FlatSlice::from_vec(vals.clone());
        assert!(!built.is_borrowed());
        assert_eq!(built, ids);
        assert_eq!(built.clone(), ids.clone());
        assert_eq!(&built[..5], &vals[..5]);
        assert!(format!("{built:?}").contains("owned"));
        // The borrowed view outlives the StoreFile handle (keepalive Arc).
        drop(mapped);
        assert_eq!(ids.as_slice(), &vals[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::ChecksumMismatch {
            section: "arcs".into(),
        };
        assert!(e.to_string().contains("arcs"));
        assert!(StoreError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains('9'));
        assert!(StoreError::from(std::io::Error::other("x"))
            .to_string()
            .contains("I/O"));
    }
}
