//! Read-only byte mappings backing the zero-copy container tier.
//!
//! A [`Mapping`] is a stable, immutable, 8-byte-aligned byte region that
//! a [`crate::StoreFile`] can serve sections from without copying. Two
//! implementations share one code path upstream:
//!
//! * [`MmapRegion`] — a private read-only `mmap(2)` of the file,
//!   declared via `extern "C"` (no new crates, consistent with the
//!   offline-shim policy). Open cost is O(page-table setup); bytes are
//!   faulted in from the page cache on first touch, and N processes
//!   mapping the same artifact share one physical copy.
//! * [`ArenaMapping`] — the portable fallback: the file is read into a
//!   `u64`-backed arena, so the base address is 8-byte aligned exactly
//!   like a page-aligned mapping and every alignment guarantee the flat
//!   sections rely on holds on non-mmap platforms (and in tests that
//!   exercise the fallback deliberately).
//!
//! Both are `Send + Sync`: the region is immutable for its entire life.

use std::fmt;
use std::path::Path;

/// A stable read-only byte region. The two guarantees every implementor
/// must uphold: the base address is at least 8-byte aligned, and the
/// bytes never move or change while the mapping is alive (heap- or
/// page-table-backed, never a stack buffer).
pub trait Mapping: Send + Sync + fmt::Debug {
    /// The mapped bytes.
    fn bytes(&self) -> &[u8];
}

// ---------------------------------------------------------------------
// mmap(2) binding (unix, 64-bit)
// ---------------------------------------------------------------------

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// A private read-only `mmap` of one file. Unmapped on drop.
#[cfg(all(unix, target_pointer_width = "64"))]
pub struct MmapRegion {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl MmapRegion {
    /// Maps `file` read-only. Returns `None` when the kernel refuses
    /// (e.g. a filesystem without mmap support) so the caller can fall
    /// back to the arena path; zero-length files are also `None` because
    /// `mmap` rejects empty ranges.
    fn map(file: &std::fs::File, len: usize) -> Option<MmapRegion> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh private read-only mapping of a file descriptor
        // we own; the kernel validates every argument and returns
        // MAP_FAILED instead of faulting.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return None;
        }
        Some(MmapRegion { ptr, len })
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Mapping for MmapRegion {
    fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, page-aligned (so 8-byte aligned), valid until drop.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region this struct owns.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MmapRegion({} bytes)", self.len)
    }
}

// SAFETY: the region is immutable (PROT_READ, private) for its entire
// lifetime; shared reads from any thread are fine and drop runs once.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for MmapRegion {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for MmapRegion {}

// ---------------------------------------------------------------------
// Aligned-arena fallback (every platform)
// ---------------------------------------------------------------------

/// The read-into-aligned-arena fallback: file bytes in a `u64`-backed
/// buffer, so the base address carries the same 8-byte alignment a page
/// mapping would.
pub struct ArenaMapping {
    arena: Vec<u64>,
    len: usize,
}

impl ArenaMapping {
    /// Reads `path` entirely into a fresh arena.
    pub fn read_from(path: &Path) -> std::io::Result<ArenaMapping> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file exceeds address space",
            )
        })?;
        let mut arena = vec![0u64; len.div_ceil(8)];
        // SAFETY: a u64 slice viewed as initialized bytes; `len` is
        // within the allocation by construction.
        let dst = unsafe { std::slice::from_raw_parts_mut(arena.as_mut_ptr() as *mut u8, len) };
        file.read_exact(dst)?;
        Ok(ArenaMapping { arena, len })
    }

    /// Wraps already-loaded bytes (copying them into the arena); used
    /// when a caller has bytes but wants mapping-grade alignment.
    pub fn from_bytes(bytes: &[u8]) -> ArenaMapping {
        let mut arena = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: same in-bounds byte view as above.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(arena.as_mut_ptr() as *mut u8, bytes.len()) };
        dst.copy_from_slice(bytes);
        ArenaMapping {
            arena,
            len: bytes.len(),
        }
    }
}

impl Mapping for ArenaMapping {
    fn bytes(&self) -> &[u8] {
        // SAFETY: the arena holds at least `len` initialized bytes and
        // u64 storage is always validly readable as bytes.
        unsafe { std::slice::from_raw_parts(self.arena.as_ptr() as *const u8, self.len) }
    }
}

impl fmt::Debug for ArenaMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArenaMapping({} bytes)", self.len)
    }
}

/// Maps `path` read-only: `mmap` where available, the aligned arena
/// everywhere else (and whenever the kernel refuses the mapping), so
/// callers see one code path either way.
pub fn map_file(path: &Path) -> std::io::Result<Box<dyn Mapping>> {
    #[cfg(all(unix, target_pointer_width = "64"))]
    {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if let Ok(len) = usize::try_from(len) {
            if let Some(region) = MmapRegion::map(&file, len) {
                return Ok(Box::new(region));
            }
        }
    }
    Ok(Box::new(ArenaMapping::read_from(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("press-map-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn arena_matches_file_and_is_aligned() {
        for len in [0usize, 1, 7, 8, 9, 4096, 4097] {
            let contents: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let path = temp_file(&format!("arena-{len}"), &contents);
            let arena = ArenaMapping::read_from(&path).unwrap();
            assert_eq!(arena.bytes(), &contents[..]);
            assert_eq!(arena.bytes().as_ptr() as usize % 8, 0);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn from_bytes_copies_into_aligned_arena() {
        let arena = ArenaMapping::from_bytes(&[1, 2, 3]);
        assert_eq!(arena.bytes(), &[1, 2, 3]);
        assert_eq!(arena.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn map_file_agrees_with_arena() {
        let contents: Vec<u8> = (0..10_000).map(|i| (i % 255) as u8).collect();
        let path = temp_file("mmap", &contents);
        let mapped = map_file(&path).unwrap();
        assert_eq!(mapped.bytes(), &contents[..]);
        assert_eq!(mapped.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let path = temp_file("empty", b"");
        let mapped = map_file(&path).unwrap();
        assert!(mapped.bytes().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
