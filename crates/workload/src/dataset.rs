//! Dataset assembly: the Singapore-taxi stand-in (DESIGN.md §2).
//!
//! A [`Workload`] is a deterministic, seeded collection of
//! [`TrajectoryRecord`]s over one road network. Each record carries its
//! ground-truth path and continuous motion profile, from which raw GPS
//! traces (at any sampling interval, with any noise level) and
//! ground-truth PRESS trajectories can both be derived — so every
//! experiment in the paper's §6 can re-slice the *same* journeys.

use crate::motion::{MotionConfig, MotionProfile};
use crate::trips::{route_trip, RoutingConfig};
use crate::zipf::Zipf;
use press_core::{DtPoint, GpsPoint, GpsTrajectory, SpatialPath, TemporalSequence, Trajectory};
use press_network::{NodeId, RoadNetwork, SpProvider};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Full workload configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of trajectories to generate.
    pub num_trajectories: usize,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Number of popular (hub) origin–destination pairs.
    pub hub_pairs: usize,
    /// Fraction of trips drawn from the Zipf hub demand (the rest are
    /// uniform random OD pairs).
    pub hub_trip_fraction: f64,
    /// Zipf exponent of the hub demand.
    pub zipf_exponent: f64,
    /// Minimum trip length in edges (shorter trips are re-drawn).
    pub min_trip_edges: usize,
    /// Number of traffic-perception profiles. Each trip routes as the
    /// exact shortest path under one profile's perceived edge costs —
    /// modelling time-of-day traffic. Trips sharing (origin, destination,
    /// profile) follow identical routes, giving FST mining its repeated
    /// corridors, while perceived ≠ stored weights keeps SP compression
    /// non-trivial. Set to 0 to fall back to per-hop detour routing.
    pub perception_profiles: usize,
    /// Relative jitter of perceived vs stored edge weights in `[0, 1)`.
    pub perception_jitter: f64,
    /// Routing behaviour (used when `perception_profiles == 0`).
    pub routing: RoutingConfig,
    /// Motion behaviour (speeds, stops).
    pub motion: MotionConfig,
    /// Default GPS sampling interval (seconds/point; the paper's median is
    /// 30 s/point).
    pub sampling_interval: f64,
    /// GPS noise standard deviation (meters).
    pub gps_noise: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_trajectories: 200,
            seed: 42,
            hub_pairs: 24,
            hub_trip_fraction: 0.7,
            zipf_exponent: 1.0,
            min_trip_edges: 5,
            perception_profiles: 4,
            perception_jitter: 0.35,
            routing: RoutingConfig::default(),
            motion: MotionConfig::default(),
            sampling_interval: 30.0,
            gps_noise: 8.0,
        }
    }
}

/// One generated journey: ground-truth path + continuous motion.
#[derive(Clone, Debug)]
pub struct TrajectoryRecord {
    /// Ground-truth edge path.
    pub path: Vec<press_network::EdgeId>,
    /// Ground-truth motion profile along the path.
    pub profile: MotionProfile,
    /// Per-record seed (drives GPS noise reproducibly).
    pub seed: u64,
}

impl TrajectoryRecord {
    /// Ground-truth PRESS trajectory sampled every `interval` seconds.
    pub fn truth_trajectory(&self, interval: f64) -> Trajectory {
        Trajectory::new(
            SpatialPath::new_unchecked(self.path.clone()),
            TemporalSequence::new_unchecked(self.profile.sample(interval)),
        )
    }

    /// Raw GPS trace: positions along the path at the sampled times, with
    /// isotropic Gaussian noise of standard deviation `noise` meters.
    pub fn gps_trace(&self, net: &RoadNetwork, interval: f64, noise: f64) -> GpsTrajectory {
        let samples = self.profile.sample(interval);
        let spath = SpatialPath::new_unchecked(self.path.clone());
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let points = samples
            .iter()
            .map(|s| {
                let mut p = spath
                    .point_at(net, s.d)
                    .expect("profile distance within path");
                if noise > 0.0 {
                    let (gx, gy) = gaussian_pair(&mut rng);
                    p.x += gx * noise;
                    p.y += gy * noise;
                }
                GpsPoint { point: p, t: s.t }
            })
            .collect();
        GpsTrajectory { points }
    }

    /// Number of GPS samples this record produces at `interval`.
    pub fn raw_point_count(&self, interval: f64) -> usize {
        self.profile.sample(interval).len()
    }
}

/// Graph-only reachability check (BFS over out-edges).
fn bfs_reachable(net: &RoadNetwork, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; net.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    seen[from.index()] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &e in net.out_edges(u) {
            let v = net.edge(e).to;
            if v == to {
                return true;
            }
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

/// A standard Gaussian pair via Box–Muller (the `rand` crate alone ships no
/// normal distribution).
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// A complete generated dataset.
pub struct Workload {
    pub net: Arc<RoadNetwork>,
    pub sp: Arc<dyn SpProvider>,
    pub config: WorkloadConfig,
    pub records: Vec<TrajectoryRecord>,
}

impl Workload {
    /// Generates the workload deterministically from the configuration.
    pub fn generate(
        net: Arc<RoadNetwork>,
        sp: Arc<dyn SpProvider>,
        config: WorkloadConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_nodes = net.num_nodes() as u32;
        // Hub OD pairs: random distinct reachable pairs, demand ~ Zipf.
        let mut hubs = Vec::with_capacity(config.hub_pairs);
        while hubs.len() < config.hub_pairs {
            let a = NodeId(rng.gen_range(0..n_nodes));
            let b = NodeId(rng.gen_range(0..n_nodes));
            // Plain BFS reachability: probing `sp.node_dist` here would run
            // one full Dijkstra per random source on a lazy backend and
            // pollute its LRU with never-reused trees.
            if a != b && bfs_reachable(&net, a, b) {
                hubs.push((a, b));
            }
        }
        let zipf = Zipf::new(config.hub_pairs.max(1), config.zipf_exponent);
        // Traffic-perception profiles: perceived edge costs per profile.
        let profiles: Vec<Vec<f64>> = (0..config.perception_profiles)
            .map(|_| {
                net.edge_ids()
                    .map(|e| {
                        let jitter = if config.perception_jitter > 0.0 {
                            1.0 + rng.gen_range(-config.perception_jitter..config.perception_jitter)
                        } else {
                            1.0
                        };
                        net.weight(e) * jitter
                    })
                    .collect()
            })
            .collect();
        let mut records = Vec::with_capacity(config.num_trajectories);
        let mut attempts = 0usize;
        let max_attempts = config.num_trajectories * 50 + 1000;
        while records.len() < config.num_trajectories && attempts < max_attempts {
            attempts += 1;
            let (origin, destination) = if rng.gen::<f64>() < config.hub_trip_fraction {
                hubs[zipf.sample(&mut rng)]
            } else {
                (
                    NodeId(rng.gen_range(0..n_nodes)),
                    NodeId(rng.gen_range(0..n_nodes)),
                )
            };
            let routed = if profiles.is_empty() {
                route_trip(&net, origin, destination, &config.routing, &mut rng)
            } else {
                let profile = &profiles[rng.gen_range(0..profiles.len())];
                crate::trips::route_trip_perceived(&net, origin, destination, profile)
            };
            let Some(path) = routed else {
                continue;
            };
            if path.len() < config.min_trip_edges {
                continue;
            }
            let weights: Vec<f64> = path.iter().map(|&e| net.weight(e)).collect();
            let seed = rng.gen::<u64>();
            let profile = MotionProfile::simulate(&weights, &config.motion, seed);
            records.push(TrajectoryRecord {
                path,
                profile,
                seed,
            });
        }
        Workload {
            net,
            sp,
            config,
            records,
        }
    }

    /// Ground-truth trajectories at the configured sampling interval.
    pub fn truth_trajectories(&self) -> Vec<Trajectory> {
        self.records
            .iter()
            .map(|r| r.truth_trajectory(self.config.sampling_interval))
            .collect()
    }

    /// Spatial paths only (training input for HSC).
    pub fn paths(&self) -> Vec<Vec<press_network::EdgeId>> {
        self.records.iter().map(|r| r.path.clone()).collect()
    }

    /// Splits records into (training, evaluation) by a fraction, mimicking
    /// the paper's "trajectories corresponding to one day" training split.
    pub fn split(&self, train_fraction: f64) -> (&[TrajectoryRecord], &[TrajectoryRecord]) {
        let k = ((self.records.len() as f64) * train_fraction).round() as usize;
        let k = k.clamp(1, self.records.len().saturating_sub(1).max(1));
        self.records.split_at(k.min(self.records.len()))
    }

    /// Fraction of ground-truth samples (at the configured interval) where
    /// the vehicle is stationary — the paper reports ~10 % for its data.
    pub fn stationary_fraction(&self) -> f64 {
        let mut flat = 0usize;
        let mut total = 0usize;
        for r in &self.records {
            let pts = r.profile.sample(self.config.sampling_interval);
            for w in pts.windows(2) {
                total += 1;
                if w[1].d - w[0].d < 1e-9 {
                    flat += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            flat as f64 / total as f64
        }
    }
}

/// Serializes a GPS trajectory as CSV text (`x,y,t` lines, meter/second
/// precision as a fleet logger would emit) — the on-disk form real taxi
/// datasets ship in, and the input handed to the ZIP/RAR-like baselines
/// (the paper compresses its 13.2 GB raw dataset with off-the-shelf ZIP
/// and RAR).
pub fn gps_to_csv(gps: &GpsTrajectory) -> Vec<u8> {
    let mut out = String::with_capacity(gps.points.len() * 24);
    for p in &gps.points {
        use std::fmt::Write;
        let _ = writeln!(out, "{:.2},{:.2},{}", p.point.x, p.point.y, p.t as u64);
    }
    out.into_bytes()
}

/// Serializes a GPS trajectory into the raw byte layout of the paper's
/// storage model (x: f64, y: f64, t: u32 per point) — the input handed to
/// the ZIP/RAR-like baselines.
pub fn gps_to_bytes(gps: &GpsTrajectory) -> Vec<u8> {
    let mut out = Vec::with_capacity(gps.points.len() * 20);
    for p in &gps.points {
        out.extend_from_slice(&p.point.x.to_le_bytes());
        out.extend_from_slice(&p.point.y.to_le_bytes());
        out.extend_from_slice(&(p.t as u32).to_le_bytes());
    }
    out
}

/// Serializes a temporal sequence the same way (d: f32, t: u32).
pub fn temporal_to_bytes(points: &[DtPoint]) -> Vec<u8> {
    let mut out = Vec::with_capacity(points.len() * 8);
    for p in points {
        out.extend_from_slice(&(p.d as f32).to_le_bytes());
        out.extend_from_slice(&(p.t as u32).to_le_bytes());
    }
    out
}

/// Convenience: a small default network + workload for tests and examples.
pub fn default_test_workload(num_trajectories: usize, seed: u64) -> Workload {
    let net = Arc::new(press_network::grid_network(&press_network::GridConfig {
        nx: 10,
        ny: 10,
        spacing: 120.0,
        weight_jitter: 0.15,
        removal_prob: 0.03,
        seed,
    }));
    let sp = press_network::SpBackend::Dense.build(net.clone());
    Workload::generate(
        net,
        sp,
        WorkloadConfig {
            num_trajectories,
            seed,
            ..WorkloadConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        default_test_workload(60, 11)
    }

    #[test]
    fn generates_requested_count() {
        let w = small();
        assert_eq!(w.records.len(), 60);
        for r in &w.records {
            assert!(r.path.len() >= w.config.min_trip_edges);
            w.net.validate_path(&r.path).unwrap();
            assert!((r.profile.total_distance() - w.net.path_weight(&r.path)).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = default_test_workload(20, 3);
        let b = default_test_workload(20, 3);
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.path, rb.path);
            assert_eq!(ra.profile, rb.profile);
        }
    }

    #[test]
    fn truth_trajectories_are_valid() {
        let w = small();
        for t in w.truth_trajectories() {
            assert!(!t.path.is_empty());
            assert!(t.temporal.len() >= 2);
            // Validation: reconstructing through the checked constructor.
            TemporalSequence::new(t.temporal.points.clone()).unwrap();
            // The final d matches the path weight.
            let (_, dmax) = t.temporal.dist_range().unwrap();
            assert!((dmax - t.path.weight(&w.net)).abs() < 1e-6);
        }
    }

    #[test]
    fn gps_traces_are_near_the_path() {
        let w = small();
        let r = &w.records[0];
        let gps = r.gps_trace(&w.net, 30.0, 8.0);
        assert_eq!(gps.len(), r.raw_point_count(30.0));
        let spath = SpatialPath::new_unchecked(r.path.clone());
        let samples = r.profile.sample(30.0);
        for (g, s) in gps.points.iter().zip(&samples) {
            let truth = spath.point_at(&w.net, s.d).unwrap();
            assert!(
                g.point.dist(&truth) < 8.0 * 6.0,
                "GPS noise implausibly large: {} m",
                g.point.dist(&truth)
            );
        }
        // Noise-free trace lies exactly on the path.
        let clean = r.gps_trace(&w.net, 30.0, 0.0);
        for (g, s) in clean.points.iter().zip(&samples) {
            let truth = spath.point_at(&w.net, s.d).unwrap();
            assert!(g.point.dist(&truth) < 1e-9);
        }
    }

    #[test]
    fn hub_demand_skews_route_popularity() {
        let w = small();
        // Count identical full paths; the Zipf hub demand should produce
        // repeated journeys.
        use std::collections::HashMap;
        let mut counts: HashMap<&[press_network::EdgeId], usize> = HashMap::new();
        for r in &w.records {
            *counts.entry(r.path.as_slice()).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            max >= 3,
            "expected popular repeated routes, max repetition {max}"
        );
    }

    #[test]
    fn stationary_fraction_is_reasonable() {
        let w = small();
        let f = w.stationary_fraction();
        assert!(f > 0.0, "stops must appear");
        assert!(f < 0.6, "stops should not dominate: {f}");
    }

    #[test]
    fn split_partitions_records() {
        let w = small();
        let (train, eval) = w.split(0.25);
        assert_eq!(train.len() + eval.len(), w.records.len());
        assert!(!train.is_empty() && !eval.is_empty());
    }

    #[test]
    fn byte_serializers_have_fixed_layout() {
        let gps = GpsTrajectory {
            points: vec![GpsPoint {
                point: press_network::Point::new(1.0, 2.0),
                t: 3.0,
            }],
        };
        assert_eq!(gps_to_bytes(&gps).len(), 20);
        assert_eq!(
            temporal_to_bytes(&[DtPoint::new(1.0, 2.0), DtPoint::new(3.0, 4.0)]).len(),
            16
        );
    }
}
