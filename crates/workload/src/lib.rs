//! # press-workload
//!
//! Synthetic trajectory workload generator standing in for the Singapore
//! taxi dataset of the PRESS paper (465k trajectories, January 2011 — not
//! publicly available). The generator reproduces the statistical
//! properties the PRESS algorithms exploit (DESIGN.md §2):
//!
//! * trips follow **mostly shortest paths** with occasional detours
//!   ([`trips`]) → SP compression has bite;
//! * origin–destination demand is **Zipf-skewed** over hub pairs
//!   ([`zipf`]) → frequent sub-trajectories exist for FST mining;
//! * vehicles **dwell** at intersections (taxi stands, lights) and cruise
//!   at per-edge speeds ([`motion`]) → ~10 % stationary samples, giving
//!   BTC ratio > 1 even at zero tolerance;
//! * GPS traces derive from a continuous motion profile, so the **same
//!   journey** can be re-sampled at any interval or noise level
//!   ([`dataset`]) — required by the paper's sampling-rate sweep
//!   (Fig. 10(a)).
pub mod dataset;
pub mod motion;
pub mod queries;
pub mod trips;
pub mod zipf;

pub use dataset::{
    default_test_workload, gps_to_bytes, gps_to_csv, temporal_to_bytes, TrajectoryRecord, Workload,
    WorkloadConfig,
};
pub use motion::{MotionConfig, MotionProfile};
pub use queries::{query_mix, QueryMixConfig};
pub use trips::{route_trip, RoutingConfig};
pub use zipf::Zipf;
