//! Continuous motion profiles along a path.
//!
//! A trajectory's temporal behaviour is simulated *once* as a piecewise
//! linear distance-over-time curve (per-edge cruising speeds plus dwell
//! events where the vehicle stands still — the paper observes ~10 % of
//! Singapore taxi samples are stationary). The profile can then be sampled
//! at **any** GPS interval, which is what lets the Fig. 10(a) sampling-rate
//! sweep re-sample identical journeys instead of regenerating different
//! ones.

use press_core::DtPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the motion simulation.
#[derive(Clone, Copy, Debug)]
pub struct MotionConfig {
    /// Mean cruising speed (m/s).
    pub base_speed: f64,
    /// Relative speed jitter per edge in `[0, 1)`.
    pub speed_jitter: f64,
    /// Probability of a dwell at each edge boundary.
    pub stop_prob: f64,
    /// Dwell duration range (seconds).
    pub stop_duration: (f64, f64),
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            base_speed: 10.0,
            speed_jitter: 0.35,
            stop_prob: 0.08,
            stop_duration: (20.0, 120.0),
        }
    }
}

/// A piecewise linear `d(t)` curve: the ground-truth motion of one vehicle.
#[derive(Clone, Debug, PartialEq)]
pub struct MotionProfile {
    /// Breakpoints with strictly increasing `t` and non-decreasing `d`;
    /// starts at `(0, 0)`.
    pub breakpoints: Vec<DtPoint>,
}

impl MotionProfile {
    /// Simulates motion over a path given as per-edge weights (meters).
    pub fn simulate(edge_weights: &[f64], cfg: &MotionConfig, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&cfg.speed_jitter),
            "speed jitter must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut breakpoints = vec![DtPoint::new(0.0, 0.0)];
        let mut d = 0.0f64;
        let mut t = 0.0f64;
        for &w in edge_weights {
            // Dwell before entering the edge.
            if cfg.stop_prob > 0.0 && rng.gen::<f64>() < cfg.stop_prob {
                let dwell = rng.gen_range(cfg.stop_duration.0..=cfg.stop_duration.1);
                t += dwell;
                breakpoints.push(DtPoint::new(d, t));
            }
            let speed = cfg.base_speed
                * if cfg.speed_jitter > 0.0 {
                    1.0 + rng.gen_range(-cfg.speed_jitter..cfg.speed_jitter)
                } else {
                    1.0
                };
            d += w;
            t += w / speed.max(0.1);
            breakpoints.push(DtPoint::new(d, t));
        }
        MotionProfile { breakpoints }
    }

    /// Total distance of the journey.
    pub fn total_distance(&self) -> f64 {
        self.breakpoints.last().map_or(0.0, |p| p.d)
    }

    /// Total duration of the journey (seconds).
    pub fn duration(&self) -> f64 {
        self.breakpoints.last().map_or(0.0, |p| p.t)
    }

    /// Ground-truth distance at time `t` (clamped).
    pub fn d_at(&self, t: f64) -> f64 {
        press_core::temporal::dis_at(&self.breakpoints, t)
    }

    /// Samples the profile every `interval` seconds, always including the
    /// final point — the `(d, t)` temporal sequence a GPS unit reporting at
    /// that rate would produce.
    pub fn sample(&self, interval: f64) -> Vec<DtPoint> {
        assert!(interval > 0.0, "sampling interval must be positive");
        let end = self.duration();
        let mut out = Vec::with_capacity((end / interval) as usize + 2);
        let mut t = 0.0;
        while t < end {
            out.push(DtPoint::new(self.d_at(t), t));
            t += interval;
        }
        out.push(DtPoint::new(
            self.total_distance(),
            end.max(t - interval + 1e-9),
        ));
        // Guard: strictly increasing t (the final push could coincide).
        if out.len() >= 2 && out[out.len() - 2].t >= out[out.len() - 1].t {
            let fixed_t = out[out.len() - 2].t + 1e-6;
            let last = out.last_mut().unwrap();
            last.t = fixed_t;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> MotionProfile {
        MotionProfile::simulate(&[100.0, 120.0, 80.0, 100.0], &MotionConfig::default(), 7)
    }

    #[test]
    fn profile_covers_full_distance() {
        let p = profile();
        assert!((p.total_distance() - 400.0).abs() < 1e-9);
        assert!(p.duration() > 0.0);
        assert_eq!(p.breakpoints[0], DtPoint::new(0.0, 0.0));
    }

    #[test]
    fn profile_is_monotone() {
        let p = profile();
        for w in p.breakpoints.windows(2) {
            assert!(w[1].t > w[0].t);
            assert!(w[1].d >= w[0].d);
        }
    }

    #[test]
    fn stops_produce_flat_segments() {
        let cfg = MotionConfig {
            stop_prob: 1.0,
            ..MotionConfig::default()
        };
        let p = MotionProfile::simulate(&[100.0, 100.0], &cfg, 1);
        let flats = p
            .breakpoints
            .windows(2)
            .filter(|w| w[1].d == w[0].d && w[1].t > w[0].t)
            .count();
        assert_eq!(flats, 2, "every edge boundary should dwell: {p:?}");
    }

    #[test]
    fn sampling_is_consistent_with_truth() {
        let p = profile();
        for interval in [1.0, 5.0, 30.0, 60.0] {
            let samples = p.sample(interval);
            assert!(samples.len() >= 2);
            // Monotone and matching the ground-truth curve at sample times.
            for w in samples.windows(2) {
                assert!(w[1].t > w[0].t, "t must increase: {w:?}");
                assert!(w[1].d >= w[0].d);
            }
            for s in &samples[..samples.len() - 1] {
                assert!((p.d_at(s.t) - s.d).abs() < 1e-9);
            }
            // Last sample lands on the journey end.
            assert!((samples.last().unwrap().d - p.total_distance()).abs() < 1e-9);
        }
    }

    #[test]
    fn denser_sampling_yields_more_points() {
        let p = profile();
        assert!(p.sample(1.0).len() > p.sample(10.0).len());
        assert!(p.sample(10.0).len() >= p.sample(60.0).len());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = MotionProfile::simulate(&[50.0, 60.0], &MotionConfig::default(), 9);
        let b = MotionProfile::simulate(&[50.0, 60.0], &MotionConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_path_gives_origin_only() {
        let p = MotionProfile::simulate(&[], &MotionConfig::default(), 1);
        assert_eq!(p.total_distance(), 0.0);
        assert_eq!(p.breakpoints.len(), 1);
    }
}
