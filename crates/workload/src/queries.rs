//! Deterministic mixed query workloads for the serving tier.
//!
//! The bench and CI gates need repeatable query traffic against a
//! [`press_core::TrajectoryStore`]: a seeded mix of `range` / `whenat` /
//! `whereat` probes shaped like dashboard traffic — mostly-selective
//! windows over a long time horizon, a tunable share of deliberate
//! misses, and Zipf-like hotspot repetition (the same handful of popular
//! probes asked over and over, which is what block caches and the
//! synopsis index monetise). [`query_mix`] produces exactly that as a
//! `Vec<StoreQuery>` ready for [`press_core::QueryBatch`]; the same
//! `(config, seed)` always yields the same vector.

use press_core::StoreQuery;
use press_network::{Mbr, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated query mix; see [`query_mix`].
#[derive(Clone, Debug)]
pub struct QueryMixConfig {
    /// Total number of queries to emit.
    pub num_queries: usize,
    /// RNG seed — same seed, same mix.
    pub seed: u64,
    /// Fraction of queries that are `Range` (the rest split evenly
    /// between `WhenAt` and `WhereAt`).
    pub range_fraction: f64,
    /// Spatial extent of the corpus; range regions are sampled inside it.
    pub bbox: Mbr,
    /// Time horizon `[t_min, t_max]` the corpus covers.
    pub t_min: f64,
    /// See `t_min`.
    pub t_max: f64,
    /// Width of each range query's time window, as a fraction of the
    /// horizon (small values ⇒ selective queries that skip most blocks).
    pub window_fraction: f64,
    /// Side length of each range query's region, as a fraction of the
    /// bbox extent.
    pub region_fraction: f64,
    /// Fraction of range queries aimed entirely outside the time horizon
    /// (guaranteed misses — the index answers these without decoding).
    pub miss_fraction: f64,
    /// Fraction of queries replayed from a small pool of hotspot probes
    /// (popular-query repetition).
    pub hotspot_fraction: f64,
    /// Number of distinct hotspot probes in the pool.
    pub hotspot_pool: usize,
    /// Number of trajectories in the target store, for `idx` sampling.
    pub num_trajectories: usize,
}

impl Default for QueryMixConfig {
    fn default() -> Self {
        QueryMixConfig {
            num_queries: 1000,
            seed: 7,
            range_fraction: 0.8,
            bbox: Mbr::new(0.0, 0.0, 1000.0, 1000.0),
            t_min: 0.0,
            t_max: 10_000.0,
            window_fraction: 0.01,
            region_fraction: 0.25,
            miss_fraction: 0.2,
            hotspot_fraction: 0.5,
            hotspot_pool: 16,
            num_trajectories: 100,
        }
    }
}

/// Generates a deterministic mixed query workload per `cfg`.
///
/// Panics if `num_trajectories` is zero while the mix includes point
/// queries (`range_fraction < 1.0`) — point queries need a trajectory
/// to address.
pub fn query_mix(cfg: &QueryMixConfig) -> Vec<StoreQuery> {
    assert!(
        cfg.num_trajectories > 0 || cfg.range_fraction >= 1.0,
        "point queries need at least one trajectory"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pool: Vec<StoreQuery> = (0..cfg.hotspot_pool.max(1))
        .map(|_| fresh_query(cfg, &mut rng))
        .collect();
    (0..cfg.num_queries)
        .map(|_| {
            if rng.gen_bool(cfg.hotspot_fraction.clamp(0.0, 1.0)) {
                pool[rng.gen_range(0..pool.len())].clone()
            } else {
                fresh_query(cfg, &mut rng)
            }
        })
        .collect()
}

fn fresh_query(cfg: &QueryMixConfig, rng: &mut StdRng) -> StoreQuery {
    let kind = rng.gen_range(0.0..1.0);
    if kind < cfg.range_fraction {
        fresh_range(cfg, rng)
    } else if kind < cfg.range_fraction + (1.0 - cfg.range_fraction) / 2.0 {
        StoreQuery::WhenAt {
            idx: rng.gen_range(0..cfg.num_trajectories),
            p: sample_point(&cfg.bbox, rng),
            tolerance: 0.02 * extent(&cfg.bbox),
        }
    } else {
        StoreQuery::WhereAt {
            idx: rng.gen_range(0..cfg.num_trajectories),
            t: rng.gen_range(cfg.t_min..=cfg.t_max),
        }
    }
}

fn fresh_range(cfg: &QueryMixConfig, rng: &mut StdRng) -> StoreQuery {
    let horizon = (cfg.t_max - cfg.t_min).max(1.0);
    let window = (cfg.window_fraction.clamp(0.0, 1.0) * horizon).max(1e-9);
    let t1 = if rng.gen_bool(cfg.miss_fraction.clamp(0.0, 1.0)) {
        // Window entirely after the horizon: a guaranteed index-level miss.
        cfg.t_max + horizon * rng.gen_range(0.1..2.0)
    } else {
        rng.gen_range(cfg.t_min..=(cfg.t_max - window).max(cfg.t_min))
    };
    let side = cfg.region_fraction.clamp(0.0, 1.0) * extent(&cfg.bbox);
    let c = sample_point(&cfg.bbox, rng);
    StoreQuery::Range {
        t1,
        t2: t1 + window,
        region: Mbr::new(
            c.x - side / 2.0,
            c.y - side / 2.0,
            c.x + side / 2.0,
            c.y + side / 2.0,
        ),
    }
}

fn extent(bbox: &Mbr) -> f64 {
    (bbox.max_x - bbox.min_x).max(bbox.max_y - bbox.min_y)
}

fn sample_point(bbox: &Mbr, rng: &mut StdRng) -> Point {
    Point::new(
        rng.gen_range(bbox.min_x..=bbox.max_x),
        rng.gen_range(bbox.min_y..=bbox.max_y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mix() {
        let cfg = QueryMixConfig::default();
        assert_eq!(query_mix(&cfg), query_mix(&cfg));
        let other = QueryMixConfig {
            seed: 8,
            ..cfg.clone()
        };
        assert_ne!(query_mix(&cfg), query_mix(&other));
    }

    #[test]
    fn mix_respects_fractions_and_bounds() {
        let cfg = QueryMixConfig {
            num_queries: 2000,
            range_fraction: 0.6,
            hotspot_fraction: 0.0,
            ..QueryMixConfig::default()
        };
        let mix = query_mix(&cfg);
        assert_eq!(mix.len(), 2000);
        let ranges = mix
            .iter()
            .filter(|q| matches!(q, StoreQuery::Range { .. }))
            .count();
        let frac = ranges as f64 / mix.len() as f64;
        assert!((frac - 0.6).abs() < 0.05, "range fraction {frac}");
        for q in &mix {
            match q {
                StoreQuery::Range { t1, t2, .. } => assert!(t1 <= t2),
                StoreQuery::WhenAt { idx, .. } | StoreQuery::WhereAt { idx, .. } => {
                    assert!(*idx < cfg.num_trajectories)
                }
            }
        }
    }

    #[test]
    fn hotspots_repeat() {
        let cfg = QueryMixConfig {
            num_queries: 500,
            hotspot_fraction: 1.0,
            hotspot_pool: 4,
            ..QueryMixConfig::default()
        };
        let mix = query_mix(&cfg);
        let mut distinct: Vec<&StoreQuery> = Vec::new();
        for q in &mix {
            if !distinct.contains(&q) {
                distinct.push(q);
            }
        }
        assert!(
            distinct.len() <= 4,
            "expected ≤4 distinct, saw {}",
            distinct.len()
        );
    }
}
