//! Trip routing: mostly-shortest paths with occasional detours.
//!
//! PRESS's SP compression is motivated by "objects tend to take the
//! shortest path instead of longer ones in most if not all cases" (§3).
//! The router therefore follows the shortest-path next hop with high
//! probability and occasionally deviates, producing trajectories that are
//! concatenations of a few shortest paths — the regime where Algorithm 1
//! shines without being trivial.

use press_network::{reverse_distances, EdgeId, NodeId, RoadNetwork};
use rand::rngs::StdRng;
use rand::Rng;

/// Routing parameters.
#[derive(Clone, Copy, Debug)]
pub struct RoutingConfig {
    /// Per-hop probability of taking a non-shortest-path edge.
    pub detour_prob: f64,
    /// Abandon a trip when its length exceeds this multiple of the
    /// shortest-path distance (guards against wandering).
    pub max_stretch: f64,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            detour_prob: 0.08,
            max_stretch: 3.0,
        }
    }
}

/// The shortest-path next edge from `u` towards the target, if reachable:
/// the out-edge minimizing `w(e) + dist(e.to, target)`, answered from one
/// reverse-Dijkstra distance array (`rev[v] = d(v, target)`). A per-source
/// SP provider is the wrong shape for this fixed-target pattern — every
/// probe would be a fresh source, i.e. a fresh full Dijkstra on a lazy
/// backend — so routing carries its own reverse tree instead.
fn sp_next_edge(net: &RoadNetwork, rev: &[f64], u: NodeId) -> Option<EdgeId> {
    let mut best: Option<(f64, EdgeId)> = None;
    for &e in net.out_edges(u) {
        let d = net.weight(e) + rev[net.edge(e).to.index()];
        if d.is_finite() && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, e));
        }
    }
    best.map(|(_, e)| e)
}

/// Routes a trip from `origin` to `destination` under **perceived** edge
/// weights (a traffic profile): the trip is the exact shortest path under
/// the perceived costs, which deviates in patches from the network's
/// stored-weight shortest paths. This is the realistic regime the paper's
/// SP-compression assumption describes — drivers *mostly* follow shortest
/// paths, but not edge-for-edge under the stored metric.
pub fn route_trip_perceived(
    net: &RoadNetwork,
    origin: NodeId,
    destination: NodeId,
    perceived: &[f64],
) -> Option<Vec<EdgeId>> {
    if origin == destination {
        return None;
    }
    let tree = press_network::dijkstra_with(net, origin, perceived);
    let path = tree.edge_path_to(net, destination)?;
    if path.is_empty() {
        return None;
    }
    Some(path)
}

/// Routes a trip from `origin` to `destination`. Returns `None` when the
/// destination is unreachable or the detour budget is exhausted.
pub fn route_trip(
    net: &RoadNetwork,
    origin: NodeId,
    destination: NodeId,
    cfg: &RoutingConfig,
    rng: &mut StdRng,
) -> Option<Vec<EdgeId>> {
    if origin == destination {
        return None;
    }
    // One reverse Dijkstra serves every `d(·, destination)` query this
    // trip makes (next-hop choice, detour reachability, stretch budget).
    let rev = reverse_distances(net, destination);
    let sp_dist = rev[origin.index()];
    if !sp_dist.is_finite() {
        return None;
    }
    let budget = sp_dist * cfg.max_stretch + 1.0;
    let mut path = Vec::new();
    let mut node = origin;
    let mut traveled = 0.0f64;
    while node != destination {
        if traveled > budget {
            return None;
        }
        let sp_edge = sp_next_edge(net, &rev, node)?;
        let take_detour = cfg.detour_prob > 0.0 && rng.gen::<f64>() < cfg.detour_prob;
        let chosen = if take_detour {
            // A random alternative that still reaches the destination and
            // does not immediately backtrack.
            let alternatives: Vec<EdgeId> = net
                .out_edges(node)
                .iter()
                .copied()
                .filter(|&e| {
                    e != sp_edge
                        && rev[net.edge(e).to.index()].is_finite()
                        && path
                            .last()
                            .is_none_or(|&p: &EdgeId| net.edge(e).to != net.edge(p).from)
                })
                .collect();
            if alternatives.is_empty() {
                sp_edge
            } else {
                alternatives[rng.gen_range(0..alternatives.len())]
            }
        } else {
            sp_edge
        };
        traveled += net.weight(chosen);
        path.push(chosen);
        node = net.edge(chosen).to;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use press_network::{grid_network, GridConfig, SpProvider, SpTable};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Arc<RoadNetwork>, Arc<dyn SpProvider>) {
        let net = Arc::new(grid_network(&GridConfig {
            nx: 8,
            ny: 8,
            weight_jitter: 0.15,
            seed: 13,
            ..GridConfig::default()
        }));
        let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
        (net, sp)
    }

    #[test]
    fn zero_detour_prob_gives_the_shortest_path() {
        let (net, sp) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RoutingConfig {
            detour_prob: 0.0,
            ..RoutingConfig::default()
        };
        for (a, b) in [(0u32, 63u32), (7, 56), (20, 43)] {
            let trip = route_trip(&net, NodeId(a), NodeId(b), &cfg, &mut rng).unwrap();
            let w: f64 = trip.iter().map(|&e| net.weight(e)).sum();
            let d = sp.node_dist(NodeId(a), NodeId(b));
            assert!((w - d).abs() < 1e-9, "trip weight {w} vs SP {d}");
            net.validate_path(&trip).unwrap();
        }
    }

    #[test]
    fn detours_lengthen_but_stay_connected() {
        let (net, sp) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RoutingConfig {
            detour_prob: 0.3,
            max_stretch: 5.0,
        };
        let mut longer = 0;
        for k in 0..20 {
            let trip = route_trip(&net, NodeId(0), NodeId(63), &cfg, &mut rng).unwrap_or_default();
            if trip.is_empty() {
                continue; // budget exhausted, allowed
            }
            net.validate_path(&trip).unwrap();
            assert_eq!(net.edge(trip[0]).from, NodeId(0));
            assert_eq!(net.edge(*trip.last().unwrap()).to, NodeId(63));
            let w: f64 = trip.iter().map(|&e| net.weight(e)).sum();
            if w > sp.node_dist(NodeId(0), NodeId(63)) + 1e-9 {
                longer += 1;
            }
            let _ = k;
        }
        assert!(longer > 5, "detours should usually lengthen the trip");
    }

    #[test]
    fn same_node_and_unreachable_rejected() {
        let (net, sp) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = &sp;
        assert!(route_trip(
            &net,
            NodeId(0),
            NodeId(0),
            &RoutingConfig::default(),
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn deterministic_for_seed() {
        let (net, _sp) = setup();
        let cfg = RoutingConfig {
            detour_prob: 0.2,
            ..RoutingConfig::default()
        };
        let a = route_trip(
            &net,
            NodeId(5),
            NodeId(60),
            &cfg,
            &mut StdRng::seed_from_u64(9),
        );
        let b = route_trip(
            &net,
            NodeId(5),
            NodeId(60),
            &cfg,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn perceived_routing_is_valid_and_deviates() {
        use rand::Rng;
        let (net, sp) = setup();
        // A jittered perception profile.
        let mut rng = StdRng::seed_from_u64(77);
        let perceived: Vec<f64> = net
            .edge_ids()
            .map(|e| net.weight(e) * (1.0 + rng.gen_range(-0.4..0.4)))
            .collect();
        let mut deviated = 0;
        for (a, b) in [(0u32, 63u32), (7, 56), (3, 60), (16, 47), (2, 61)] {
            let path = route_trip_perceived(&net, NodeId(a), NodeId(b), &perceived).unwrap();
            net.validate_path(&path).unwrap();
            assert_eq!(net.edge(path[0]).from, NodeId(a));
            assert_eq!(net.edge(*path.last().unwrap()).to, NodeId(b));
            let w: f64 = path.iter().map(|&e| net.weight(e)).sum();
            let d = sp.node_dist(NodeId(a), NodeId(b));
            // Never more than jitter-bounded stretch over the true SP.
            assert!(w <= d * 2.4 + 1e-9);
            if w > d + 1e-9 {
                deviated += 1;
            }
        }
        assert!(deviated >= 2, "perception should deviate some routes");
        // Same endpoints, same profile => identical route.
        let p1 = route_trip_perceived(&net, NodeId(0), NodeId(63), &perceived);
        let p2 = route_trip_perceived(&net, NodeId(0), NodeId(63), &perceived);
        assert_eq!(p1, p2);
    }
}
