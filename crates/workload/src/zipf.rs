//! Zipf sampling over a finite rank set.
//!
//! Route popularity in urban taxi data is heavily skewed — the FST stage of
//! PRESS exists because "certain edge sequences are much more popular than
//! others" (§3.2). We model origin–destination demand with a Zipf
//! distribution over a set of hub pairs.

use rand::Rng;

/// A precomputed Zipf distribution over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution with `n` ranks and exponent `s`
    /// (`P(k) ∝ 1 / (k+1)^s`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Samples a rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_are_in_range_and_skewed() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[19] * 3);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zero_exponent_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!((*max as f64) < *min as f64 * 1.2, "{counts:?}");
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
