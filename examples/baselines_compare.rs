//! Head-to-head on one dataset: PRESS vs MMTC vs Nonmaterial vs the
//! ZIP/RAR-like byte compressors — the §6.1 comparison in miniature.
//!
//! Run with: `cargo run --release --example baselines_compare`

use press::baselines::{mmtc, nonmaterial, rarx, zipx};
use press::core::stats::raw_gps_bytes;
use press::prelude::*;
use press::workload::gps_to_csv;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let net = Arc::new(grid_network(&GridConfig {
        nx: 12,
        ny: 12,
        spacing: 160.0,
        weight_jitter: 0.15,
        seed: 31,
        ..GridConfig::default()
    }));
    // Any SpProvider backend works here; the lazy cache keeps the demo's
    // memory proportional to the sources actually touched.
    let sp = SpBackend::lazy().build(net.clone());
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 150,
            seed: 31,
            min_trip_edges: 8,
            ..WorkloadConfig::default()
        },
    );
    let (train, eval) = workload.split(0.3);
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let tau = 200.0; // shared error budget (meters)
    let press = Press::train(
        sp.clone(),
        &training_paths,
        PressConfig {
            bounds: BtcBounds::new(tau, 60.0),
            ..PressConfig::default()
        },
    )
    .expect("training");

    let trajectories: Vec<Trajectory> = eval.iter().map(|r| r.truth_trajectory(30.0)).collect();
    let raw_bytes: usize = trajectories
        .iter()
        .map(|t| raw_gps_bytes(t.temporal.len()))
        .sum();
    println!(
        "dataset: {} trajectories, {} raw GPS bytes; shared error budget {} m\n",
        trajectories.len(),
        raw_bytes,
        tau
    );
    println!(
        "{:<14} {:>12} {:>8} {:>10}  notes",
        "method", "bytes", "ratio", "time"
    );

    // PRESS.
    let start = Instant::now();
    let press_bytes: usize = trajectories
        .iter()
        .map(|t| press.compress(t).expect("press").storage_bytes())
        .sum();
    report(
        "PRESS",
        raw_bytes,
        press_bytes,
        start.elapsed(),
        "spatial lossless, queryable",
    );

    // MMTC.
    let cfg = mmtc::MmtcConfig::default();
    let start = Instant::now();
    let mmtc_bytes: usize = trajectories
        .iter()
        .map(|t| mmtc::compress(&sp, t, &cfg).storage_bytes())
        .sum();
    report(
        "MMTC",
        raw_bytes,
        mmtc_bytes,
        start.elapsed(),
        "lossy, no decompression",
    );

    // Nonmaterial.
    let cfg = nonmaterial::NonmaterialConfig { tolerance: tau };
    let start = Instant::now();
    let nm_bytes: usize = trajectories
        .iter()
        .map(|t| nonmaterial::compress(&sp, t, &cfg).storage_bytes())
        .sum();
    report(
        "Nonmaterial",
        raw_bytes,
        nm_bytes,
        start.elapsed(),
        "uniform-speed anchors",
    );

    // ZIP/RAR-like on the CSV log form (their natural input).
    let mut csv = Vec::new();
    for r in eval {
        csv.extend(gps_to_csv(&r.gps_trace(&net, 30.0, 8.0)));
    }
    let start = Instant::now();
    let zip = zipx::compress(&csv);
    report(
        "zipx (on CSV)",
        csv.len(),
        zip.len(),
        start.elapsed(),
        "lossless bytes, zero utility",
    );
    let start = Instant::now();
    let rar = rarx::compress(&csv);
    report(
        "rarx (on CSV)",
        csv.len(),
        rar.len(),
        start.elapsed(),
        "lossless bytes, zero utility",
    );
    // Sanity: both decompress exactly.
    assert_eq!(zipx::decompress(&zip).unwrap(), csv);
    assert_eq!(rarx::decompress(&rar).unwrap(), csv);
}

fn report(name: &str, original: usize, compressed: usize, took: std::time::Duration, notes: &str) {
    println!(
        "{:<14} {:>12} {:>8.2} {:>10.2?}  {notes}",
        name,
        compressed,
        original as f64 / compressed.max(1) as f64,
        took
    );
}
