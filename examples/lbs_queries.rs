//! LBS queries over compressed trajectories (paper §5): `whereat`,
//! `whenat`, `range`, plus the extended passes-near and min-distance
//! queries — all answered **without decompressing**, with timing
//! comparisons against the uncompressed forms.
//!
//! Run with: `cargo run --release --example lbs_queries`

use press::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let net = Arc::new(grid_network(&GridConfig {
        nx: 12,
        ny: 12,
        spacing: 160.0,
        weight_jitter: 0.15,
        seed: 23,
        ..GridConfig::default()
    }));
    let sp = Arc::new(SpTable::build(net.clone()));
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 150,
            seed: 23,
            min_trip_edges: 8,
            ..WorkloadConfig::default()
        },
    );
    let (train, eval) = workload.split(0.3);
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let press = Press::train(
        sp,
        &training_paths,
        PressConfig {
            bounds: BtcBounds::new(100.0, 30.0),
            ..PressConfig::default()
        },
    )
    .expect("training");
    let engine = QueryEngine::new(press.model());

    let trajectories: Vec<Trajectory> = eval.iter().map(|r| r.truth_trajectory(30.0)).collect();
    let compressed: Vec<CompressedTrajectory> = trajectories
        .iter()
        .map(|t| press.compress(t).expect("compress"))
        .collect();
    println!(
        "{} trajectories compressed; engine ready\n",
        compressed.len()
    );

    // ---- whereat -------------------------------------------------------
    let traj = &trajectories[0];
    let ct = &compressed[0];
    let (t0, t1) = traj.temporal.time_range().unwrap();
    let probe_t = t0 + (t1 - t0) * 0.6;
    let raw = engine.whereat_raw(traj, probe_t).unwrap();
    let comp = engine.whereat(ct, probe_t).unwrap();
    println!(
        "whereat(T, {probe_t:.0}s)  raw ({:.1}, {:.1})  compressed ({:.1}, {:.1})  deviation {:.1} m",
        raw.x,
        raw.y,
        comp.x,
        comp.y,
        raw.dist(&comp)
    );

    // ---- whenat --------------------------------------------------------
    let total = traj.path.weight(&net);
    let probe_p = traj.path.point_at(&net, total * 0.5).unwrap();
    let raw_t = engine.whenat_raw(traj, probe_p, 1.0).unwrap();
    let comp_t = engine.whenat(ct, probe_p, 1.0).unwrap();
    println!(
        "whenat(T, ({:.1}, {:.1}))  raw {raw_t:.1}s  compressed {comp_t:.1}s  deviation {:.1} s",
        probe_p.x,
        probe_p.y,
        (raw_t - comp_t).abs()
    );

    // ---- range ---------------------------------------------------------
    let region = Mbr::new(
        probe_p.x - 120.0,
        probe_p.y - 120.0,
        probe_p.x + 120.0,
        probe_p.y + 120.0,
    );
    let raw_hit = engine.range_raw(traj, t0, t1, &region).unwrap();
    let comp_hit = engine.range(ct, t0, t1, &region).unwrap();
    println!("range(T, [{t0:.0}, {t1:.0}], 240m box)  raw {raw_hit}  compressed {comp_hit}");

    // ---- extended queries (§5.4) ----------------------------------------
    let near = engine.passes_near(ct, probe_p, 50.0, t0, t1).unwrap();
    println!("passes_near(T, midpoint, 50 m)  {near}");
    let dist01 = engine.min_distance(&compressed[0], &compressed[1]).unwrap();
    println!("min_distance(T0, T1)  {dist01:.1} m");

    // ---- traffic snapshot (an advanced LBS from §5.4's examples) --------
    let snapshot_t = t0 + 120.0;
    let mut positions = 0usize;
    for (t, c) in trajectories.iter().zip(&compressed) {
        let (a, b) = t.temporal.time_range().unwrap();
        if snapshot_t >= a && snapshot_t <= b && engine.whereat(c, snapshot_t).is_ok() {
            positions += 1;
        }
    }
    println!("traffic snapshot at t={snapshot_t:.0}s: {positions} vehicles located\n");

    // ---- timing: compressed vs raw --------------------------------------
    let reps = 50usize;
    let start = Instant::now();
    for _ in 0..reps {
        for (t, _) in trajectories.iter().zip(&compressed) {
            let (a, b) = t.temporal.time_range().unwrap();
            std::hint::black_box(engine.whereat_raw(t, (a + b) / 2.0).ok());
        }
    }
    let raw_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..reps {
        for (t, c) in trajectories.iter().zip(&compressed) {
            let (a, b) = t.temporal.time_range().unwrap();
            std::hint::black_box(engine.whereat(c, (a + b) / 2.0).ok());
        }
    }
    let comp_time = start.elapsed();
    println!(
        "whereat timing over {} queries: raw {:.2?}, compressed {:.2?} (ratio {:.2})",
        reps * trajectories.len(),
        raw_time,
        comp_time,
        comp_time.as_secs_f64() / raw_time.as_secs_f64()
    );
}
