//! Online compression of a live trajectory stream (paper §7.1.2: PRESS's
//! head-to-tail scans "can be adapted to online compression").
//!
//! A vehicle reports edges and `(d, t)` fixes as it drives; the streaming
//! SP compressor and streaming BTC emit retained elements immediately with
//! O(1) state, and the emitted streams are bit-identical to what the batch
//! compressors would produce for the completed trip.
//!
//! The final section pushes the same live feed through the crash-safe
//! ingest engine (`press-serve`), which wires these online compressors
//! behind a WAL: every fix is vetted, journaled, and acked, and defective
//! fixes are quarantined with typed reasons instead of corrupting the
//! stream.
//!
//! Run with: `cargo run --release --example online_stream`

use press::core::spatial::{sp_compress, OnlineSpCompressor};
use press::core::temporal::{btc_compress, OnlineBtc};
use press::matcher::hmm::GpsSample;
use press::prelude::*;
use std::sync::Arc;

fn main() {
    let net = Arc::new(grid_network(&GridConfig {
        nx: 10,
        ny: 10,
        spacing: 150.0,
        weight_jitter: 0.15,
        seed: 77,
        ..GridConfig::default()
    }));
    let sp = Arc::new(SpTable::build(net.clone()));
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 10,
            seed: 77,
            ..WorkloadConfig::default()
        },
    );
    let record = &workload.records[0];
    let trip = record.truth_trajectory(30.0);
    println!(
        "live trip: {} edges, {} GPS fixes",
        trip.path.len(),
        trip.temporal.len()
    );

    // --- Stream the spatial side: one edge per "turn" event. -------------
    let mut sp_enc = OnlineSpCompressor::new(sp.clone());
    let mut sp_stream = Vec::new();
    for (i, &e) in trip.path.edges.iter().enumerate() {
        let emitted = sp_enc.push(e);
        if !emitted.is_empty() {
            println!("  edge #{i:>3} traversed -> emitted {emitted:?}");
        }
        sp_stream.extend(emitted);
    }
    sp_stream.extend(sp_enc.finish());
    println!(
        "spatial: {} edges in -> {} retained online",
        trip.path.len(),
        sp_stream.len()
    );
    assert_eq!(sp_stream, sp_compress(&sp, &trip.path.edges));

    // --- Stream the temporal side: one (d, t) tuple per GPS fix. ---------
    let bounds = BtcBounds::new(50.0, 20.0);
    let mut btc_enc = OnlineBtc::new(bounds);
    let mut kept = Vec::new();
    for &p in &trip.temporal.points {
        kept.extend(btc_enc.push(p));
    }
    kept.extend(btc_enc.finish());
    println!(
        "temporal: {} tuples in -> {} retained online (τ = {} m, η = {} s)",
        trip.temporal.len(),
        kept.len(),
        bounds.tsnd,
        bounds.nstd
    );
    assert_eq!(kept, btc_compress(&trip.temporal.points, bounds));

    // Error of the live-compressed temporal curve, verified post-hoc.
    let tsnd = press::core::temporal::tsnd(&trip.temporal.points, &kept);
    let nstd = press::core::temporal::nstd(&trip.temporal.points, &kept);
    println!("measured error: TSND {tsnd:.1} m (≤ τ), NSTD {nstd:.1} s (≤ η)");
    assert!(tsnd <= bounds.tsnd + 1e-6 && nstd <= bounds.nstd + 1e-6);
    println!("online and batch outputs are identical — §7.1.2 holds.");

    // --- The same feed through the crash-safe ingest engine. -------------
    // In production the online compressors sit behind `press-serve`:
    // push(vehicle, fix) vets, journals, and acks each fix; finalize +
    // flush runs the matcher and the streaming compressors above.
    let training_paths: Vec<_> = workload.records[1..]
        .iter()
        .map(|r| r.path.clone())
        .collect();
    let press = Press::train(
        sp.clone(),
        &training_paths,
        PressConfig {
            bounds,
            ..PressConfig::default()
        },
    )
    .expect("training");
    let matcher = Arc::new(MapMatcher::new(net.clone(), MatcherConfig::default()));
    let dir = std::env::temp_dir().join(format!("press-online-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine =
        IngestEngine::open(&dir, matcher, press, IngestConfig::default()).expect("open");
    let gps = record.gps_trace(&net, 15.0, 5.0);
    let mut accepted = 0usize;
    for p in &gps.points {
        if let Ack::Accepted { .. } = engine
            .push(
                7,
                GpsSample {
                    point: p.point,
                    t: p.t,
                },
            )
            .expect("push")
        {
            accepted += 1;
        }
    }
    // A defective fix degrades into the quarantine, never a panic.
    let bad = GpsSample {
        point: Point::new(f64::NAN, 0.0),
        t: 1.0e9,
    };
    let ack = engine.push(7, bad).expect("push bad");
    println!("\ningest engine: {accepted} fixes acked + journaled; NaN fix -> {ack:?}");
    engine.finalize_all().expect("finalize");
    let pieces = engine.flush().expect("flush");
    println!(
        "flush matched + online-compressed the live session into {pieces} trajectory piece(s)."
    );
    let _ = std::fs::remove_dir_all(&dir);
}
