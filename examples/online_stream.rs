//! Online compression of a live trajectory stream (paper §7.1.2: PRESS's
//! head-to-tail scans "can be adapted to online compression").
//!
//! A vehicle reports edges and `(d, t)` fixes as it drives; the streaming
//! SP compressor and streaming BTC emit retained elements immediately with
//! O(1) state, and the emitted streams are bit-identical to what the batch
//! compressors would produce for the completed trip.
//!
//! Run with: `cargo run --release --example online_stream`

use press::core::spatial::{sp_compress, OnlineSpCompressor};
use press::core::temporal::{btc_compress, OnlineBtc};
use press::prelude::*;
use std::sync::Arc;

fn main() {
    let net = Arc::new(grid_network(&GridConfig {
        nx: 10,
        ny: 10,
        spacing: 150.0,
        weight_jitter: 0.15,
        seed: 77,
        ..GridConfig::default()
    }));
    let sp = Arc::new(SpTable::build(net.clone()));
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 10,
            seed: 77,
            ..WorkloadConfig::default()
        },
    );
    let record = &workload.records[0];
    let trip = record.truth_trajectory(30.0);
    println!(
        "live trip: {} edges, {} GPS fixes",
        trip.path.len(),
        trip.temporal.len()
    );

    // --- Stream the spatial side: one edge per "turn" event. -------------
    let mut sp_enc = OnlineSpCompressor::new(sp.clone());
    let mut sp_stream = Vec::new();
    for (i, &e) in trip.path.edges.iter().enumerate() {
        let emitted = sp_enc.push(e);
        if !emitted.is_empty() {
            println!("  edge #{i:>3} traversed -> emitted {emitted:?}");
        }
        sp_stream.extend(emitted);
    }
    sp_stream.extend(sp_enc.finish());
    println!(
        "spatial: {} edges in -> {} retained online",
        trip.path.len(),
        sp_stream.len()
    );
    assert_eq!(sp_stream, sp_compress(&sp, &trip.path.edges));

    // --- Stream the temporal side: one (d, t) tuple per GPS fix. ---------
    let bounds = BtcBounds::new(50.0, 20.0);
    let mut btc_enc = OnlineBtc::new(bounds);
    let mut kept = Vec::new();
    for &p in &trip.temporal.points {
        kept.extend(btc_enc.push(p));
    }
    kept.extend(btc_enc.finish());
    println!(
        "temporal: {} tuples in -> {} retained online (τ = {} m, η = {} s)",
        trip.temporal.len(),
        kept.len(),
        bounds.tsnd,
        bounds.nstd
    );
    assert_eq!(kept, btc_compress(&trip.temporal.points, bounds));

    // Error of the live-compressed temporal curve, verified post-hoc.
    let tsnd = press::core::temporal::tsnd(&trip.temporal.points, &kept);
    let nstd = press::core::temporal::nstd(&trip.temporal.points, &kept);
    println!("measured error: TSND {tsnd:.1} m (≤ τ), NSTD {nstd:.1} s (≤ η)");
    assert!(tsnd <= bounds.tsnd + 1e-6 && nstd <= bounds.nstd + 1e-6);
    println!("online and batch outputs are identical — §7.1.2 holds.");
}
