//! Quickstart: train PRESS on a small corpus, compress one trajectory,
//! verify losslessness, and run a query — the five-minute tour.
//!
//! Run with: `cargo run --release --example quickstart`

use press::prelude::*;
use std::sync::Arc;

fn main() {
    // --- 1. The road network (static, built once per city). -------------
    let net = Arc::new(grid_network(&GridConfig {
        nx: 10,
        ny: 10,
        spacing: 150.0,
        weight_jitter: 0.15,
        removal_prob: 0.02,
        seed: 7,
    }));
    println!(
        "network: {} nodes, {} directed edges",
        net.num_nodes(),
        net.num_edges()
    );

    // --- 2. A shortest-path provider (the paper's SPend structure). -----
    // Dense = eager O(|V|^2) table; `SpBackend::lazy()` = bounded
    // per-source cache for networks where |V|^2 cannot fit in RAM;
    // `SpBackend::Ch` = contraction hierarchy for query-heavy workloads
    // at city scale; `SpBackend::Hl` = 2-hop hub labels over the CH
    // order, trading ~10x the CH memory for flat-merge microsecond point
    // lookups. All four answer bit-identically.
    let sp = SpBackend::Dense.build(net.clone());
    println!(
        "sp backend (dense): {:.1} MiB",
        sp.approx_bytes() as f64 / (1 << 20) as f64
    );

    // --- 3. A trajectory corpus (synthetic stand-in for taxi data). -----
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 120,
            seed: 7,
            ..WorkloadConfig::default()
        },
    );
    let (train, eval) = workload.split(0.3);
    println!(
        "workload: {} trajectories ({} train / {} eval)",
        workload.records.len(),
        train.len(),
        eval.len()
    );

    // --- 4. Train PRESS (θ = 3, temporal bounds τ = 100 m, η = 30 s). ---
    let config = PressConfig {
        bounds: BtcBounds::new(100.0, 30.0),
        ..PressConfig::default()
    };
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let press = Press::train(sp, &training_paths, config).expect("training");
    // The same training under the lazy backend yields bit-identical
    // output while touching only the sources the corpus needs:
    let lazy = SpBackend::lazy().build(net.clone());
    let press_lazy = Press::train(lazy.clone(), &training_paths, config).expect("training (lazy)");
    let sample = eval[0].truth_trajectory(30.0);
    assert_eq!(
        press.compress(&sample).expect("dense compress"),
        press_lazy.compress(&sample).expect("lazy compress"),
        "backends must compress identically"
    );
    println!(
        "lazy sp backend after training: {:.2} MiB resident, same compressed bits",
        lazy.approx_bytes() as f64 / (1 << 20) as f64
    );
    // And the contraction hierarchy: sub-quadratic preprocessing —
    // batched independent-set contraction over every core, bit-identical
    // for any core count — microsecond point lookups, still identical.
    let ch = SpBackend::Ch.build(net.clone());
    let press_ch = Press::train(ch.clone(), &training_paths, config).expect("training (ch)");
    assert_eq!(
        press.compress(&sample).expect("dense compress"),
        press_ch.compress(&sample).expect("ch compress"),
        "CH backend must compress identically"
    );
    println!(
        "ch sp backend: {:.2} MiB resident, same compressed bits",
        ch.approx_bytes() as f64 / (1 << 20) as f64
    );
    // And hub labels: the CH searches precomputed into per-node label
    // arrays — point lookups become a flat sorted merge, the fastest
    // backend for lookup-dominated serving, still bit-identical.
    let hl = SpBackend::Hl.build(net.clone());
    let press_hl = Press::train(hl.clone(), &training_paths, config).expect("training (hl)");
    assert_eq!(
        press.compress(&sample).expect("dense compress"),
        press_hl.compress(&sample).expect("hl compress"),
        "HL backend must compress identically"
    );
    println!(
        "hl sp backend: {:.2} MiB resident, same compressed bits",
        hl.approx_bytes() as f64 / (1 << 20) as f64
    );
    println!("trained: {:?}", press.model());

    // --- 5. Compress, inspect, decompress. -------------------------------
    let trajectory = eval[0].truth_trajectory(30.0);
    let compressed = press.compress(&trajectory).expect("compress");
    let stats = press.stats_vs_raw_gps(trajectory.temporal.len(), &compressed);
    println!(
        "one trajectory: {} raw GPS bytes -> {} compressed bytes (ratio {:.2}, saves {:.1}%)",
        stats.original_bytes,
        stats.compressed_bytes,
        stats.ratio(),
        stats.savings_pct()
    );
    let restored = press.decompress(&compressed).expect("decompress");
    assert_eq!(restored.path, trajectory.path, "HSC is lossless");
    println!(
        "spatial roundtrip exact: {} edges restored; temporal error bounded by (τ, η) = ({}, {})",
        restored.path.len(),
        press.config().bounds.tsnd,
        press.config().bounds.nstd,
    );

    // --- 6. Query the compressed form directly (no decompression). ------
    let engine = QueryEngine::new(press.model());
    let (t0, t1) = trajectory.temporal.time_range().unwrap();
    let mid = (t0 + t1) / 2.0;
    let pos = engine.whereat(&compressed, mid).expect("whereat");
    let raw_pos = engine.whereat_raw(&trajectory, mid).expect("whereat raw");
    println!(
        "whereat(t = {:.0}s): compressed ({:.1}, {:.1}) vs raw ({:.1}, {:.1}) — deviation {:.1} m (≤ τ)",
        mid,
        pos.x,
        pos.y,
        raw_pos.x,
        raw_pos.y,
        pos.dist(&raw_pos)
    );

    // --- 7. Dataset-level savings. ---------------------------------------
    let mut total = press::core::stats::CompressionStats::default();
    for r in eval {
        let t = r.truth_trajectory(30.0);
        let c = press.compress(&t).expect("compress");
        total.accumulate(&press.stats_vs_raw_gps(t.temporal.len(), &c));
    }
    println!(
        "whole evaluation set: ratio {:.2} ({:.1}% saved)",
        total.ratio(),
        total.savings_pct()
    );
}
