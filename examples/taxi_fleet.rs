//! Full pipeline on a simulated taxi fleet — the paper's Fig. 1 end to
//! end: raw GPS → map matcher → trajectory re-formatter → paralleled
//! spatial + temporal compression → storage report.
//!
//! Run with: `cargo run --release --example taxi_fleet`

use press::core::stats::CompressionStats;
use press::matcher::hmm::GpsSample;
use press::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // City + fleet.
    let net = Arc::new(grid_network(&GridConfig {
        nx: 12,
        ny: 12,
        spacing: 160.0,
        weight_jitter: 0.15,
        removal_prob: 0.03,
        seed: 11,
    }));
    let sp = Arc::new(SpTable::build(net.clone()));
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 200,
            seed: 11,
            ..WorkloadConfig::default()
        },
    );
    println!(
        "fleet: {} journeys on a {}-edge network ({:.1}% stationary samples)",
        workload.records.len(),
        net.num_edges(),
        workload.stationary_fraction() * 100.0
    );

    // Train on the first "day".
    let (train, eval) = workload.split(0.3);
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let press = Press::train(
        sp.clone(),
        &training_paths,
        PressConfig {
            bounds: BtcBounds::new(50.0, 20.0),
            ..PressConfig::default()
        },
    )
    .expect("training");

    // The map matcher (the paper's first component).
    let matcher = MapMatcher::new(net.clone(), MatcherConfig::default());

    let started = Instant::now();
    let mut matched_ok = 0usize;
    let mut exact_paths = 0usize;
    let mut stats = CompressionStats::default();
    let mut compressed_store: Vec<CompressedTrajectory> = Vec::new();
    for record in eval {
        // 1. The taxi reports raw GPS fixes every 30 s with ~8 m noise.
        let gps = record.gps_trace(&net, 30.0, 8.0);
        let samples: Vec<GpsSample> = gps
            .points
            .iter()
            .map(|p| GpsSample {
                point: p.point,
                t: p.t,
            })
            .collect();
        // 2. Map matching.
        let Ok(matched) = matcher.match_trajectory(&samples) else {
            continue;
        };
        matched_ok += 1;
        if matched.edges == record.path {
            exact_paths += 1;
        }
        // 3. Re-format into spatial path + (d, t) temporal sequence.
        let path_samples: Vec<PathSample> = matched
            .samples
            .iter()
            .map(|s| PathSample {
                edge_idx: s.edge_idx,
                frac: s.frac,
                t: s.t,
            })
            .collect();
        let trajectory = reformat(&net, matched.edges, &path_samples).expect("reformat");
        // 4. Paralleled compression.
        let compressed = press.compress_parallel(&trajectory).expect("compress");
        stats.accumulate(&press.stats_vs_raw_gps(gps.len(), &compressed));
        compressed_store.push(compressed);
    }
    let elapsed = started.elapsed();
    println!(
        "pipeline: matched {matched_ok}/{} journeys ({exact_paths} bit-exact paths) in {:.2?}",
        eval.len(),
        elapsed
    );
    println!(
        "storage: {} -> {} bytes, ratio {:.2} ({:.1}% saved)",
        stats.original_bytes,
        stats.compressed_bytes,
        stats.ratio(),
        stats.savings_pct()
    );

    // Static structures amortized across the fleet (the paper's §6.2
    // justification).
    let aux = press.model().auxiliary_sizes();
    println!(
        "auxiliary structures: sp {} KiB + automaton {} KiB + huffman {} KiB + query tables {} KiB (static)",
        aux.sp_table_bytes / 1024,
        aux.automaton_bytes / 1024,
        aux.huffman_bytes / 1024,
        (aux.node_dist_bytes + aux.node_mbr_bytes) / 1024
    );
    println!(
        "compressed store holds {} trajectories in {} KiB",
        compressed_store.len(),
        compressed_store
            .iter()
            .map(|c| c.storage_bytes())
            .sum::<usize>()
            / 1024
    );
}
