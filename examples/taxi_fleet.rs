//! A simulated taxi fleet streamed through the fault-tolerant ingest
//! engine — the paper's Fig. 1 pipeline (raw GPS → map matcher →
//! re-formatter → paralleled spatial + temporal compression) running
//! live behind a crash-safe WAL, then killed mid-stream and recovered.
//!
//! The demo injects real-world dirt into the stream (NaN fixes,
//! duplicates, teleports, reorderings), tears the journal at an
//! arbitrary byte offset to simulate a power cut, and shows the
//! recovered engine publishing a corpus byte-identical to a clean run
//! over exactly the acknowledged prefix — no acked fix lost, nothing
//! unacked invented.
//!
//! Run with: `cargo run --release --example taxi_fleet`

use press::matcher::hmm::GpsSample;
use press::prelude::*;
use press::serve::{truncate_wal, wal_len, DiskFault, Event, FaultKind, FaultyIo, ServeError};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // City + fleet.
    let net = Arc::new(grid_network(&GridConfig {
        nx: 12,
        ny: 12,
        spacing: 160.0,
        weight_jitter: 0.15,
        removal_prob: 0.03,
        seed: 11,
    }));
    let sp = SpBackend::Dense.build(net.clone());
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 60,
            seed: 11,
            ..WorkloadConfig::default()
        },
    );

    // Train on the first "day"; the rest of the fleet drives live.
    let (train, eval) = workload.split(0.4);
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let press = Press::train(
        sp,
        &training_paths,
        PressConfig {
            bounds: BtcBounds::new(50.0, 20.0),
            ..PressConfig::default()
        },
    )
    .expect("training");
    let matcher = Arc::new(MapMatcher::new(net.clone(), MatcherConfig::default()));

    // Interleave every vehicle's GPS fixes into one arrival stream:
    // taxis report every 10 s with ~6 m noise, staggered starts.
    let mut events: Vec<Event> = Vec::new();
    for (v, record) in eval.iter().take(16).enumerate() {
        let trace = record.gps_trace(&net, 10.0, 6.0);
        for p in &trace.points {
            events.push((
                v as u64,
                GpsSample {
                    point: p.point,
                    t: p.t + v as f64 * 41.0,
                },
            ));
        }
    }
    events.sort_by(|a, b| a.1.t.partial_cmp(&b.1.t).expect("finite timestamps"));
    println!(
        "fleet: 16 taxis, {} clean fixes on a {}-edge network",
        events.len(),
        net.num_edges()
    );

    // Real feeds are dirty. Mangle the stream with a seeded fault plan:
    // dead zones, NaN/teleport corruptions, retry duplicates, UDP
    // reordering — all reproducible from the seed.
    let plan = FaultPlan {
        seed: 11,
        drop_prob: 0.01,
        corrupt_prob: 0.03,
        duplicate_prob: 0.03,
        reorder_prob: 0.02,
    };
    let feed = plan.mangle(&events);
    println!("feed after fault injection: {} fixes\n", feed.len());

    let cfg = IngestConfig {
        policy: SessionPolicy::default(),
        idle_timeout: 300.0, // stream seconds, not wall clock
        max_session_points: 64,
        ..IngestConfig::default()
    };

    // --- Live ingest, then a power cut mid-stream. -----------------------
    let dir = std::env::temp_dir().join(format!("press-taxi-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine = IngestEngine::open(
        &dir,
        Arc::clone(&matcher),
        press.reconfigured(press.config()),
        cfg,
    )
    .expect("open");
    // Every ingested fix is acked with its WAL offset. Acks never lie:
    // `Accepted` means a completed fsync covers the frame (survives
    // power loss), `Journaled` means it is written but its group-commit
    // sync is still pending (survives a process crash; a power cut may
    // take it, which is exactly what the tear below simulates).
    let mut acked: Vec<(usize, u64)> = Vec::new();
    for (i, &(v, s)) in feed.iter().enumerate() {
        if let Some(offset) = engine.push(v, s).expect("push").offset() {
            acked.push((i, offset));
        }
    }
    let stats = engine.stats();
    println!(
        "ingested: {} accepted, {} repaired (coalesced re-sends), {} quarantined",
        stats.points_accepted,
        stats.points_repaired,
        stats.total_quarantined()
    );
    for reason in QuarantineReason::ALL {
        let n = stats.points_quarantined[reason.index()];
        if n > 0 {
            println!("  quarantine[{reason}]: {n}");
        }
    }
    drop(engine); // power cut: nothing finalized, flushed, or published

    let full = wal_len(&dir).expect("wal length");
    let cut = full * 3 / 5;
    truncate_wal(&dir, cut).expect("tear the journal");
    println!("\npower cut: journal torn at byte {cut} of {full}");

    // --- Recovery: replay the journal through the live ingest path. ------
    let t0 = Instant::now();
    let mut recovered = IngestEngine::open(
        &dir,
        Arc::clone(&matcher),
        press.reconfigured(press.config()),
        cfg,
    )
    .expect("recover");
    let rec = *recovered.recovery();
    println!(
        "recovered in {:.1} ms: {} acked points replayed, {} sessions rebuilt, \
         {} torn bytes truncated",
        t0.elapsed().as_secs_f64() * 1e3,
        rec.replayed_points,
        rec.sessions_rebuilt,
        rec.torn_bytes
    );
    recovered.finalize_all().expect("finalize");
    let pieces = recovered.flush().expect("flush");
    recovered.checkpoint().expect("checkpoint");
    let recovered_corpus = std::fs::read(recovered.corpus_path()).expect("corpus");
    println!(
        "published: {pieces} trajectory pieces, corpus {} KiB, WAL shrunk to {} bytes",
        recovered_corpus.len() / 1024,
        recovered.wal_offset()
    );

    // --- The guarantee, checked: byte-identical to a clean run. ----------
    // A fresh engine fed exactly the fixes whose acks survived the cut
    // must publish the same bytes.
    let survivors = acked.iter().take_while(|&&(_, off)| off <= cut).count();
    let last_idx = acked[survivors - 1].0;
    let dir_b = std::env::temp_dir().join(format!("press-taxi-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_b);
    let mut clean = IngestEngine::open(
        &dir_b,
        Arc::clone(&matcher),
        press.reconfigured(press.config()),
        cfg,
    )
    .expect("open clean");
    for &(v, s) in &feed[..=last_idx] {
        clean.push(v, s).expect("push");
    }
    clean.finalize_all().expect("finalize");
    clean.flush().expect("flush");
    clean.checkpoint().expect("checkpoint");
    let clean_corpus = std::fs::read(clean.corpus_path()).expect("corpus");
    assert_eq!(
        recovered_corpus, clean_corpus,
        "recovered corpus must be byte-identical to the clean run"
    );
    println!(
        "\nrecovered corpus is byte-identical to a clean run over the {survivors} \
         surviving acked fixes — no acked point lost, nothing unacked invented."
    );

    // The recovered store still answers queries.
    let store = press::core::store::TrajectoryStore::open(&recovered.corpus_path()).expect("open");
    let query = QueryEngine::new(recovered.press().model());
    let decoded = store.decode_all().expect("decode");
    if let Some((t0, t1)) = decoded.first().and_then(|ct| ct.temporal.time_range()) {
        let mid = (t0 + t1) / 2.0;
        let p = store.whereat(&query, 0, mid).expect("whereat");
        println!(
            "whereat(trajectory 0, t={mid:.0}) -> ({:.0}, {:.0})",
            p.x, p.y
        );
    }

    // --- Disk full, then freed: degraded mode, not death. ----------------
    // The same fleet through an engine whose I/O backend injects faults:
    // the disk fills mid-stream, every ingest push is refused with a
    // typed `StorageFull` (no panic, no silent drop, no lying ack),
    // matching and compression keep running — and when space returns,
    // ingest resumes in the same process.
    println!("\n--- disk full, then freed ---");
    let dir_c = std::env::temp_dir().join(format!("press-taxi-enospc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_c);
    let faulty = FaultyIo::new(Vec::new());
    let mut survivor = IngestEngine::open_with_io(
        &dir_c,
        Arc::clone(&matcher),
        press.reconfigured(press.config()),
        cfg,
        faulty.clone(),
    )
    .expect("open");
    let third = feed.len() / 3;
    for &(v, s) in &feed[..third] {
        survivor.push(v, s).expect("push");
    }
    faulty.arm(DiskFault {
        at_op: 0,
        kind: FaultKind::Enospc,
        sticky: true, // a full disk stays full until space is freed
    });
    let mut refused = 0usize;
    for &(v, s) in &feed[third..2 * third] {
        match survivor.push(v, s) {
            Err(ServeError::StorageFull(_)) => refused += 1,
            Ok(ack) => assert!(!ack.is_ingested(), "no ingested acks on a full disk"),
            Err(e) => panic!("expected StorageFull, got {e}"),
        }
    }
    let _ = survivor.flush().expect("matching needs no disk");
    assert!(
        matches!(survivor.sync(), Err(ServeError::StorageFull(_))),
        "explicit sync reports the full disk, typed"
    );
    println!(
        "disk full: {refused} pushes refused with typed StorageFull; the engine stays \
         up — matching/compression still run, sync reports the condition honestly"
    );
    faulty.clear(); // space freed
    for &(v, s) in &feed[2 * third..] {
        survivor.push(v, s).expect("push after space returns");
    }
    survivor.finalize_all().expect("finalize");
    survivor.flush().expect("flush");
    let total = survivor.checkpoint().expect("checkpoint");
    println!(
        "space freed: ingest resumed without a restart; {} storage-full rejections \
         counted, {total} trajectories published",
        survivor.stats().storage_full_rejections
    );

    // --- One shard's disk dies; the rest of the fleet keeps driving. -----
    // The same fleet at 4 writer shards, with a sticky ENOSPC scoped to
    // exactly one shard's journal file. Faults are shard-local: taxis
    // routed to the failed shard are refused with a typed
    // `ShardDegraded` naming the shard, every other taxi keeps getting
    // real acks, and when the disk returns the refused fixes re-drive
    // in the same process — the fleet never noticed.
    println!("\n--- one shard down, fleet still driving ---");
    let dir_d = std::env::temp_dir().join(format!("press-taxi-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_d);
    let sharded_cfg = IngestConfig { shards: 4, ..cfg };
    let scoped = FaultyIo::new(Vec::new());
    let mut fleet = IngestEngine::open_with_io(
        &dir_d,
        Arc::clone(&matcher),
        press.reconfigured(press.config()),
        sharded_cfg,
        scoped.clone(),
    )
    .expect("open sharded");
    let bad = fleet.shard_of(feed[0].0);
    scoped.arm_scoped(
        &format!(".s{bad}.wal"),
        DiskFault {
            at_op: 0,
            kind: FaultKind::Enospc,
            sticky: true,
        },
    );
    let mut healthy_acks = 0usize;
    let mut stranded: Vec<Event> = Vec::new();
    for &(v, s) in &feed {
        match fleet.push(v, s) {
            Ok(ack) => healthy_acks += ack.is_ingested() as usize,
            Err(e) => {
                assert_eq!(e.degraded_shard(), Some(bad), "fault stays on its shard");
                assert!(e.is_storage_full(), "typed through the wrapper: {e}");
                stranded.push((v, s));
            }
        }
    }
    for k in 0..fleet.num_shards() {
        let full = fleet.shard_stats(k).storage_full_rejections;
        assert_eq!(full > 0, k == bad, "only shard {bad} saw the fault");
    }
    println!(
        "shard {bad}/4 disk full: {} fixes refused (typed ShardDegraded, counted on \
         that shard alone), {healthy_acks} fixes acked on the healthy shards",
        stranded.len()
    );
    scoped.clear(); // the operator swaps the disk
    for &(v, s) in &stranded {
        fleet.push(v, s).expect("re-drive after the disk returns");
    }
    fleet.finalize_all().expect("finalize");
    fleet.flush().expect("flush");
    let fleet_total = fleet.checkpoint().expect("checkpoint");
    println!(
        "disk swapped: shard {bad} healed in-process; {fleet_total} trajectories \
         published across {} per-shard corpus files in one atomic manifest commit",
        fleet.num_shards()
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_dir_all(&dir_c);
    let _ = std::fs::remove_dir_all(&dir_d);
}
