//! Warm start: build the expensive artifacts once, persist them with the
//! press-store tier, and restart serving from disk — the
//! build-once/serve-many shape.
//!
//! The pipeline's dominant preprocessing costs (contraction-hierarchy
//! construction, HSC training) are paid in phase 1 and **skipped** in
//! phase 2: a fresh "process" loads the network, the hierarchy, the
//! trained model, and the block-oriented trajectory store, then answers
//! queries bit-identically to the builder.
//!
//! Run with: `cargo run --release --example warm_start`
//!
//! Pass `--map` to run phase 2 through the **zero-copy mapped tier**:
//! the hierarchy and the corpus are `mmap`ed instead of decoded into
//! owned memory — the open costs O(page faults), per-section CRCs run
//! lazily on first touch, and the answers are still bit-identical:
//!
//! `cargo run --release --example warm_start -- --map`

use press::core::query::QueryEngine;
use press::core::spatial::HscModel;
use press::core::TrajectoryStore;
use press::network::ContractionHierarchy;
use press::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let map = std::env::args().skip(1).any(|a| a == "--map");
    let dir = std::env::temp_dir().join("press-warm-start-example");
    std::fs::create_dir_all(&dir).expect("create store dir");

    // ---- Phase 1: build everything, save everything. -------------------
    println!("phase 1: cold build");
    let net = Arc::new(grid_network(&GridConfig {
        nx: 40,
        ny: 40,
        spacing: 150.0,
        weight_jitter: 0.15,
        removal_prob: 0.02,
        seed: 7,
    }));
    let t0 = Instant::now();
    let ch = Arc::new(ContractionHierarchy::build(net.clone()));
    let build_ch = t0.elapsed();
    let sp: Arc<dyn SpProvider> = ch.clone();

    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 120,
            seed: 7,
            min_trip_edges: 15,
            ..WorkloadConfig::default()
        },
    );
    let (train, eval) = workload.split(0.3);
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let t0 = Instant::now();
    let press = Press::train(sp.clone(), &training_paths, PressConfig::default()).expect("train");
    let train_time = t0.elapsed();

    // Spread departures across a "day" (one trip per 5 minutes) so the
    // per-block time-span synopses have something to discriminate on.
    let trajectories: Vec<Trajectory> = eval
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut t = r.truth_trajectory(30.0);
            for p in &mut t.temporal.points {
                p.t += i as f64 * 300.0;
            }
            t
        })
        .collect();
    let compressed = press.compress_batch(&trajectories, 4).expect("compress");
    let engine = QueryEngine::new(press.model());

    net.save_to(&dir.join("network.press"))
        .expect("save network");
    ch.save_to(&dir.join("sp_ch.press"))
        .expect("save hierarchy");
    press
        .model()
        .save_to(&dir.join("hsc.press"))
        .expect("save model");
    TrajectoryStore::create(&dir.join("corpus.press"), &engine, &compressed, 16)
        .expect("save corpus");
    let artifact_bytes: u64 = ["network.press", "sp_ch.press", "hsc.press", "corpus.press"]
        .iter()
        .map(|f| std::fs::metadata(dir.join(f)).map(|m| m.len()).unwrap_or(0))
        .sum();
    println!(
        "  built: CH in {:.2?}, HSC training in {:.2?}; saved 4 artifacts ({:.1} MiB) to {}",
        build_ch,
        train_time,
        artifact_bytes as f64 / (1 << 20) as f64,
        dir.display()
    );

    // Remember one query's answer to compare against the warm process.
    let probe_idx = 3.min(compressed.len() - 1);
    let (t0q, t1q) = trajectories[probe_idx].temporal.time_range().unwrap();
    let probe_t = (t0q + t1q) / 2.0;
    let cold_answer = engine.whereat(&compressed[probe_idx], probe_t).unwrap();

    // ---- Phase 2: a "fresh process" warm-starts from disk. -------------
    println!(
        "phase 2: warm start{}",
        if map { " (zero-copy mapped tier)" } else { "" }
    );
    let t0 = Instant::now();
    let net2 = Arc::new(RoadNetwork::load_from(&dir.join("network.press")).expect("load network"));
    // With --map the hierarchy's flat sections are borrowed straight out
    // of the page cache and the corpus defers each block's CRC to its
    // first decode; without it, both are fully decoded into owned memory.
    let ch2 = Arc::new(if map {
        ContractionHierarchy::open_mapped(net2.clone(), &dir.join("sp_ch.press"))
            .expect("map hierarchy")
    } else {
        ContractionHierarchy::load_from(net2.clone(), &dir.join("sp_ch.press"))
            .expect("load hierarchy")
    });
    let sp2: Arc<dyn SpProvider> = ch2;
    let model2 = HscModel::load_from(sp2, &dir.join("hsc.press")).expect("load model");
    let store = if map {
        TrajectoryStore::open_mapped(&dir.join("corpus.press")).expect("map corpus")
    } else {
        TrajectoryStore::open(&dir.join("corpus.press")).expect("open corpus")
    };
    assert_eq!(store.is_mapped(), map);
    let load_time = t0.elapsed();
    let speedup = (build_ch + train_time).as_secs_f64() / load_time.as_secs_f64().max(1e-9);
    println!(
        "  loaded all 4 artifacts in {:.2?} — {:.0}x faster than the {:.2?} build",
        load_time,
        speedup,
        build_ch + train_time
    );

    // Same answers, straight from disk.
    let engine2 = QueryEngine::new(&model2);
    let warm_answer = store
        .whereat(&engine2, probe_idx, probe_t)
        .expect("whereat");
    assert_eq!(
        cold_answer.x.to_bits(),
        warm_answer.x.to_bits(),
        "warm-start must answer bit-identically"
    );
    assert_eq!(cold_answer.y.to_bits(), warm_answer.y.to_bits());
    println!(
        "  whereat(traj {probe_idx}, t = {probe_t:.0}s) = ({:.1}, {:.1}) — bit-identical to the cold build",
        warm_answer.x, warm_answer.y
    );

    // Block synopses skip irrelevant blocks without decompressing them:
    // a query over the first "hour" of the day only touches the blocks
    // whose time span overlaps it.
    let bb = net2.bounding_box();
    let region = Mbr::new(bb.min_x, bb.min_y, bb.max_x, bb.max_y);
    let hits = store.range(&engine2, 0.0, 3600.0, &region).expect("range");
    let (decoded, skipped) = store.io_stats();
    println!(
        "  range query over the first hour: {} hits; {} blocks decoded, {} skipped via time-span synopses",
        hits.len(),
        decoded,
        skipped
    );
    assert!(skipped > 0, "later blocks must be skipped without decoding");

    // Spatial decompression is still lossless end to end.
    let restored = model2
        .decompress(&store.get(probe_idx).expect("get").spatial)
        .expect("decompress");
    assert_eq!(restored, trajectories[probe_idx].path.edges);
    println!("  decompressed spatial path matches the original exactly");

    let _ = std::fs::remove_dir_all(&dir);
}
