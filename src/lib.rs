//! # press — PRESS: Paralleled Road-Network-Based Trajectory Compression
//!
//! A complete Rust implementation of the PRESS framework (Song, Sun,
//! Zheng & Zheng, VLDB 2014) and everything its evaluation depends on:
//! the road-network substrate, an HMM map matcher, the two published
//! baselines (MMTC, Nonmaterial), ZIP/RAR-like byte compressors, a
//! synthetic taxi workload, and an experiment harness regenerating every
//! table and figure of the paper (see `DESIGN.md` / `EXPERIMENTS.md`).
//!
//! ## Quickstart
//!
//! ```
//! use press::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A road network and a shortest-path provider (static, per city).
//! //    `SpBackend::Dense` precomputes the O(|V|^2) table; at city scale
//! //    use `SpBackend::lazy()` for the bounded per-source cache instead.
//! let net = Arc::new(grid_network(&GridConfig::default()));
//! let sp = SpBackend::Dense.build(net.clone());
//!
//! // 2. A trajectory corpus (here: synthetic; normally map-matched GPS).
//! let workload = Workload::generate(net.clone(), sp.clone(), WorkloadConfig {
//!     num_trajectories: 40,
//!     ..WorkloadConfig::default()
//! });
//!
//! // 3. Train PRESS on one "day" of trajectories.
//! let press = Press::train(sp, &workload.paths()[..20].to_vec(), PressConfig::default()).unwrap();
//!
//! // 4. Compress / decompress — spatially lossless, temporally bounded.
//! let trajectory = workload.records[25].truth_trajectory(30.0);
//! let compressed = press.compress(&trajectory).unwrap();
//! let restored = press.decompress(&compressed).unwrap();
//! assert_eq!(restored.path, trajectory.path);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`network`] | `press-network` | graph, geometry, Dijkstra, SP table, generators |
//! | [`matcher`] | `press-matcher` | HMM map matching |
//! | [`core`] | `press-core` | representation, HSC, BTC, queries, the `Press` façade |
//! | [`serve`] | `press-serve` | fault-tolerant streaming fleet ingest (WAL, quarantine, recovery) |
//! | [`baselines`] | `press-baselines` | MMTC, Nonmaterial, zipx/rarx, simplification kit |
//! | [`workload`] | `press-workload` | synthetic taxi workload generator + query mixes |
//!
//! The end-to-end system narrative (GPS fix → WAL → sessions → matcher
//! → compressors → block store → synopsis index → query executor, plus
//! the SP backend tier) lives in `docs/ARCHITECTURE.md`; the normative
//! byte-level file formats are in `docs/FORMATS.md`.

pub use press_baselines as baselines;
pub use press_core as core;
pub use press_matcher as matcher;
pub use press_network as network;
pub use press_serve as serve;
pub use press_workload as workload;

/// The commonly-used types in one import.
pub mod prelude {
    pub use press_core::query::QueryEngine;
    pub use press_core::query::ScanMode;
    pub use press_core::store::TrajectoryStore;
    pub use press_core::{
        btc_compress, nstd, reformat, tsnd, BtcBounds, CompressedTrajectory, Decomposer, DtPoint,
        GpsPoint, GpsTrajectory, HscModel, PathSample, Press, PressConfig, PressError, QueryBatch,
        SpatialPath, StoreAnswer, StoreQuery, TemporalSequence, Trajectory,
    };
    pub use press_matcher::{MapMatcher, MatcherConfig};
    pub use press_network::{
        grid_network, ChConfig, ContractionHierarchy, EdgeId, GridConfig, HubLabels, LazySpCache,
        LazySpConfig, MappedContractionHierarchy, MappedHubLabels, Mbr, NodeId, Point, RoadNetwork,
        RoadNetworkBuilder, SpBackend, SpProvider, SpTable,
    };
    pub use press_serve::{
        Ack, DurabilityPolicy, FaultPlan, IngestConfig, IngestEngine, QuarantineReason, ServeError,
        SessionPolicy,
    };
    pub use press_workload::{query_mix, QueryMixConfig, Workload, WorkloadConfig};
}
