//! Property tests for the zero-copy mapped serving tier: every answer a
//! mapped artifact gives — point distances, predecessor edges,
//! decompression walks, and whole query batches at any worker count —
//! must be **bit-identical** to the owned (fully decoded) load of the
//! same file, on tied (jitter 0, maximal shortest-path ambiguity) and
//! jittered grids alike. Plus a two-process smoke test: two processes
//! mapping the same artifact concurrently both answer correctly — the
//! page-cache sharing that motivates the tier in the first place.

use press::core::query::QueryEngine;
use press::core::spatial::HscModel;
use press::core::TrajectoryStore;
use press::network::{grid_network, GridConfig, RoadNetwork, SpProvider, SpTable};
use press::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A small jittered grid from proptest-drawn parameters.
fn net_from(nx: usize, ny: usize, jitter: f64, seed: u64) -> Arc<RoadNetwork> {
    Arc::new(grid_network(&GridConfig {
        nx,
        ny,
        spacing: 120.0,
        weight_jitter: jitter,
        removal_prob: 0.05,
        seed,
    }))
}

/// Deterministically turns choice bytes into a valid connected path.
fn walk_from_choices(net: &RoadNetwork, start: u32, choices: &[u8]) -> Vec<EdgeId> {
    let mut node = NodeId(start % net.num_nodes() as u32);
    let mut path: Vec<EdgeId> = Vec::with_capacity(choices.len());
    for &c in choices {
        let out = net.out_edges(node);
        if out.is_empty() {
            break;
        }
        let candidates: Vec<EdgeId> = out
            .iter()
            .copied()
            .filter(|&e| {
                path.last()
                    .is_none_or(|&p| net.edge(e).to != net.edge(p).from)
            })
            .collect();
        let pool = if candidates.is_empty() {
            out.to_vec()
        } else {
            candidates
        };
        let e = pool[c as usize % pool.len()];
        path.push(e);
        node = net.edge(e).to;
    }
    path
}

/// A scratch directory unique to this test binary's process.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("press-mapped-id-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// CH and HL: the mapped open answers `node_dist` / `pred_edge` /
    /// `sp_interior` bit-identically to the owned load of the same file.
    /// `tied` forces jitter 0 — every grid edge the same weight, so the
    /// network is saturated with equal-length shortest paths and any
    /// tie-break divergence between the two load paths would surface.
    #[test]
    fn mapped_sp_answers_are_bit_identical_to_owned(
        nx in 3usize..6,
        ny in 3usize..6,
        tied in any::<bool>(),
        jitter in 0.05f64..0.3,
        seed in 0u64..400,
    ) {
        let jitter = if tied { 0.0 } else { jitter };
        let net = net_from(nx, ny, jitter, seed);
        let ch = ContractionHierarchy::build(net.clone());
        let hl = HubLabels::from_ch(&ch, 2);
        let dir = scratch("sp");
        let ch_path = dir.join("sp_ch.press");
        let hl_path = dir.join("sp_hl.press");
        ch.save_to(&ch_path).expect("save ch");
        hl.save_to(&hl_path).expect("save hl");

        let owned_ch = ContractionHierarchy::load_from(net.clone(), &ch_path).expect("load ch");
        let mapped_ch = ContractionHierarchy::open_mapped(net.clone(), &ch_path).expect("map ch");
        let owned_hl = HubLabels::load_from(net.clone(), &hl_path).expect("load hl");
        let mapped_hl = HubLabels::open_mapped(net.clone(), &hl_path).expect("map hl");
        type ProviderPair = (Arc<dyn SpProvider>, Arc<dyn SpProvider>, &'static str);
        let pairs: Vec<ProviderPair> = vec![
            (Arc::new(owned_ch), Arc::new(mapped_ch), "ch"),
            (Arc::new(owned_hl), Arc::new(mapped_hl), "hl"),
        ];
        for (owned, mapped, name) in &pairs {
            for u in net.node_ids() {
                for v in net.node_ids() {
                    prop_assert_eq!(
                        owned.node_dist(u, v).to_bits(),
                        mapped.node_dist(u, v).to_bits(),
                        "{} node_dist({}, {})", name, u, v
                    );
                    prop_assert_eq!(
                        owned.pred_edge(u, v),
                        mapped.pred_edge(u, v),
                        "{} pred_edge({}, {})", name, u, v
                    );
                }
            }
            let edges: Vec<EdgeId> = net.edge_ids().collect();
            for &ei in edges.iter().step_by(5) {
                for &ej in edges.iter().rev().step_by(9) {
                    prop_assert_eq!(owned.sp_end(ei, ej), mapped.sp_end(ei, ej));
                    prop_assert_eq!(
                        owned.sp_interior(ei, ej),
                        mapped.sp_interior(ei, ej),
                        "{} sp_interior({}, {})", name, ei.0, ej.0
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Query batches over a mapped corpus equal the owned corpus for
    /// every worker count — the worker split must never interact with
    /// which backing (mapped or owned) the blocks decode from.
    #[test]
    fn mapped_query_batches_match_owned_for_any_worker_count(
        seed in 0u64..300,
        tied in any::<bool>(),
        starts in proptest::collection::vec(
            (0u32..1000, proptest::collection::vec(0u8..8, 4..16)), 8..14),
    ) {
        let jitter = if tied { 0.0 } else { 0.15 };
        let net = net_from(5, 5, jitter, seed);
        let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
        let training: Vec<Vec<EdgeId>> = starts
            .iter()
            .map(|(s, cs)| walk_from_choices(&net, *s, cs))
            .filter(|p| p.len() >= 3)
            .collect();
        prop_assume!(training.len() >= 3);
        let model = HscModel::train(sp, &training, 3).expect("train");
        let press = Press::with_model(Arc::new(model), PressConfig::default());
        let compressed: Vec<CompressedTrajectory> = training
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let total: f64 = p.iter().map(|&e| net.weight(e)).sum();
                let traj = Trajectory::new(
                    SpatialPath::new_unchecked(p.clone()),
                    TemporalSequence::new(vec![
                        DtPoint::new(0.0, k as f64 * 150.0),
                        DtPoint::new(total, k as f64 * 150.0 + 70.0),
                    ])
                    .expect("temporal"),
                );
                press.compress(&traj).expect("compress")
            })
            .collect();
        let engine = QueryEngine::new(press.model());
        let dir = scratch("batch");
        let path = dir.join("corpus.press");
        TrajectoryStore::create(&path, &engine, &compressed, 4).expect("create");
        let owned = TrajectoryStore::open(&path).expect("open owned");
        let mapped = TrajectoryStore::open_mapped(&path).expect("open mapped");
        prop_assert!(mapped.is_mapped() && !owned.is_mapped());

        let bb = net.bounding_box();
        let mut batch = QueryBatch::new();
        batch.push(StoreQuery::Range {
            t1: 0.0,
            t2: 400.0,
            region: Mbr::new(bb.min_x, bb.min_y, bb.max_x, bb.max_y),
        });
        batch.push(StoreQuery::Range {
            t1: 300.0,
            t2: 1e9,
            region: Mbr::new(bb.min_x, bb.min_y, (bb.min_x + bb.max_x) / 2.0, bb.max_y),
        });
        for (k, p) in training.iter().enumerate() {
            batch.push(StoreQuery::WhereAt {
                idx: k,
                t: k as f64 * 150.0 + 35.0,
            });
            let mbr = net.edge_mbr(p[p.len() / 2]);
            batch.push(StoreQuery::WhenAt {
                idx: k,
                p: Point::new(mbr.min_x, mbr.min_y),
                tolerance: 5.0,
            });
        }
        let reference = batch.run(&owned, &engine, 1).expect("reference run");
        for workers in [1usize, 2, 3, 7] {
            prop_assert_eq!(
                &batch.run(&owned, &engine, workers).expect("owned run"),
                &reference,
                "owned answers drifted at {} workers", workers
            );
            prop_assert_eq!(
                &batch.run(&mapped, &engine, workers).expect("mapped run"),
                &reference,
                "mapped answers drifted at {} workers", workers
            );
        }
    }
}

/// The deterministic network both sides of the two-process smoke build.
fn smoke_net() -> Arc<RoadNetwork> {
    net_from(5, 5, 0.0, 77)
}

/// Two processes mapping the same artifact file concurrently: the parent
/// holds its mapping open while a re-exec'd child maps the same bytes,
/// checks them against an independently built reference, and exits. Both
/// sets of answers must be correct — the kernel serves one set of
/// physical pages to both mappings, which is exactly the fleet-restart
/// scenario the mapped tier exists for.
#[test]
fn two_process_shared_mapping_smoke() {
    const CHILD_ENV: &str = "PRESS_MAP_SMOKE_CHILD";
    let net = smoke_net();
    if let Ok(path) = std::env::var(CHILD_ENV) {
        // Child: map the file the parent is holding mapped right now.
        let mapped = HubLabels::open_mapped(net.clone(), std::path::Path::new(&path))
            .expect("child maps the shared artifact");
        let reference = HubLabels::from_ch(&ContractionHierarchy::build(net.clone()), 1);
        for u in net.node_ids() {
            for v in net.node_ids().step_by(3) {
                assert_eq!(
                    mapped.node_dist(u, v).to_bits(),
                    reference.node_dist(u, v).to_bits(),
                    "child mapping disagrees at ({u}, {v})"
                );
            }
        }
        return;
    }

    let hl = HubLabels::from_ch(&ContractionHierarchy::build(net.clone()), 1);
    let dir = scratch("smoke");
    let path = dir.join("sp_hl.press");
    hl.save_to(&path).expect("save hl");
    let mapped = HubLabels::open_mapped(net.clone(), &path).expect("parent maps");
    let probe = (NodeId(3), NodeId(21));
    let before = mapped.node_dist(probe.0, probe.1).to_bits();
    assert_eq!(before, hl.node_dist(probe.0, probe.1).to_bits());

    let exe = std::env::current_exe().expect("current_exe");
    let status = std::process::Command::new(exe)
        .args(["--exact", "two_process_shared_mapping_smoke", "--nocapture"])
        .env(CHILD_ENV, &path)
        .status()
        .expect("spawn child test process");
    assert!(status.success(), "child process reported divergence");

    // The parent's mapping outlives the child's exit unchanged.
    assert_eq!(mapped.node_dist(probe.0, probe.1).to_bits(), before);
    drop(mapped);
    let _ = std::fs::remove_dir_all(&dir);
}
