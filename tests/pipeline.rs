//! Cross-crate integration tests: the full PRESS pipeline of the paper's
//! Fig. 1, exercised end to end — raw GPS → map matcher → re-formatter →
//! paralleled compression → queries → decompression — plus the baselines
//! on the same data.

use press::baselines::{mmtc, nonmaterial};
use press::core::query::QueryEngine;
use press::matcher::hmm::GpsSample;
use press::prelude::*;
use std::sync::Arc;

struct World {
    net: Arc<RoadNetwork>,
    sp: Arc<dyn SpProvider>,
    press: Press,
    workload: Workload,
}

fn world(seed: u64, bounds: BtcBounds) -> World {
    world_with_backend(seed, bounds, SpBackend::Dense)
}

fn world_with_backend(seed: u64, bounds: BtcBounds, backend: SpBackend) -> World {
    let net = Arc::new(grid_network(&GridConfig {
        nx: 10,
        ny: 10,
        spacing: 150.0,
        weight_jitter: 0.15,
        removal_prob: 0.02,
        seed,
    }));
    let sp = backend.build(net.clone());
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 80,
            seed,
            ..WorkloadConfig::default()
        },
    );
    let (train, _) = workload.split(0.4);
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let press = Press::train(
        sp.clone(),
        &training_paths,
        PressConfig {
            bounds,
            ..PressConfig::default()
        },
    )
    .expect("training");
    World {
        net,
        sp,
        press,
        workload,
    }
}

#[test]
fn gps_to_compressed_and_back() {
    let w = world(5, BtcBounds::new(60.0, 20.0));
    let matcher = MapMatcher::new(w.net.clone(), MatcherConfig::default());
    let (_, eval) = w.workload.split(0.4);
    let mut pipelines_run = 0;
    for record in eval.iter().take(25) {
        let gps = record.gps_trace(&w.net, 30.0, 6.0);
        let samples: Vec<GpsSample> = gps
            .points
            .iter()
            .map(|p| GpsSample {
                point: p.point,
                t: p.t,
            })
            .collect();
        let matched = matcher.match_trajectory(&samples).expect("match");
        let path_samples: Vec<PathSample> = matched
            .samples
            .iter()
            .map(|s| PathSample {
                edge_idx: s.edge_idx,
                frac: s.frac,
                t: s.t,
            })
            .collect();
        let traj = reformat(&w.net, matched.edges.clone(), &path_samples).expect("reformat");
        let compressed = w.press.compress_parallel(&traj).expect("compress");
        let restored = w.press.decompress(&compressed).expect("decompress");
        // Spatial losslessness end-to-end.
        assert_eq!(restored.path.edges, matched.edges);
        // Temporal error bounded.
        let tsnd_err =
            press::core::temporal::tsnd(&traj.temporal.points, &restored.temporal.points);
        let nstd_err =
            press::core::temporal::nstd(&traj.temporal.points, &restored.temporal.points);
        assert!(tsnd_err <= 60.0 + 1e-6, "TSND {tsnd_err}");
        assert!(nstd_err <= 20.0 + 1e-6, "NSTD {nstd_err}");
        pipelines_run += 1;
    }
    assert!(pipelines_run >= 20, "only {pipelines_run} pipelines ran");
}

#[test]
fn queries_agree_within_bounds_end_to_end() {
    let w = world(9, BtcBounds::new(80.0, 25.0));
    let engine = QueryEngine::new(w.press.model());
    let (_, eval) = w.workload.split(0.4);
    for record in eval.iter().take(20) {
        let traj = record.truth_trajectory(30.0);
        let compressed = w.press.compress(&traj).expect("compress");
        let (t0, t1) = traj.temporal.time_range().unwrap();
        for k in 1..5 {
            let t = t0 + (t1 - t0) * k as f64 / 5.0;
            let raw = engine.whereat_raw(&traj, t).unwrap();
            let comp = engine.whereat(&compressed, t).unwrap();
            assert!(
                raw.dist(&comp) <= 80.0 + 1e-6,
                "whereat deviation {} beyond τ",
                raw.dist(&comp)
            );
        }
        // whenat at the path midpoint.
        let total = traj.path.weight(&w.net);
        let probe = traj.path.point_at(&w.net, total / 2.0).unwrap();
        let raw_t = engine.whenat_raw(&traj, probe, 0.5).unwrap();
        let comp_t = engine.whenat(&compressed, probe, 0.5).unwrap();
        assert!((raw_t - comp_t).abs() <= 25.0 + 1e-6);
    }
}

#[test]
fn baselines_run_on_the_same_corpus() {
    let w = world(13, BtcBounds::lossless());
    let (_, eval) = w.workload.split(0.4);
    for record in eval.iter().take(10) {
        let traj = record.truth_trajectory(30.0);
        // Nonmaterial keeps the exact street sequence.
        let nm = nonmaterial::compress(&w.sp, &traj, &nonmaterial::NonmaterialConfig::default());
        assert_eq!(nm.edges, traj.path.edges);
        assert!(nm.storage_bytes() > 0);
        // MMTC produces a valid (possibly different) path with endpoints
        // preserved.
        let mm = mmtc::compress(&w.sp, &traj, &mmtc::MmtcConfig::default());
        w.net.validate_path(&mm.edges).unwrap();
        assert_eq!(
            w.net.edge(mm.edges[0]).from,
            w.net.edge(traj.path.edges[0]).from
        );
        assert_eq!(
            w.net.edge(*mm.edges.last().unwrap()).to,
            w.net.edge(*traj.path.edges.last().unwrap()).to
        );
    }
}

#[test]
fn press_beats_baselines_on_storage_with_matched_budgets() {
    let tau = 150.0;
    let w = world(21, BtcBounds::new(tau, 45.0));
    let (_, eval) = w.workload.split(0.4);
    let mut press_bytes = 0usize;
    let mut nm_bytes = 0usize;
    let mut raw_bytes = 0usize;
    for record in eval {
        let traj = record.truth_trajectory(30.0);
        raw_bytes += press::core::stats::raw_gps_bytes(traj.temporal.len());
        press_bytes += w.press.compress(&traj).unwrap().storage_bytes();
        nm_bytes += nonmaterial::compress(
            &w.sp,
            &traj,
            &nonmaterial::NonmaterialConfig { tolerance: tau },
        )
        .storage_bytes();
    }
    let press_ratio = raw_bytes as f64 / press_bytes as f64;
    let nm_ratio = raw_bytes as f64 / nm_bytes as f64;
    assert!(
        press_ratio > nm_ratio,
        "PRESS ({press_ratio:.2}) must beat Nonmaterial ({nm_ratio:.2})"
    );
}

#[test]
fn compressed_store_survives_byte_serialization() {
    // The spatial bit stream round-trips through its byte serialization —
    // a compressed store can be persisted and reloaded without loss.
    let w = world(33, BtcBounds::new(40.0, 15.0));
    let (_, eval) = w.workload.split(0.4);
    for record in eval.iter().take(10) {
        let traj = record.truth_trajectory(30.0);
        let compressed = w.press.compress(&traj).unwrap();
        let bytes = compressed.spatial.bits.to_bytes();
        let reloaded =
            press::core::spatial::BitStream::from_bytes(&bytes, compressed.spatial.bits.len_bits());
        assert_eq!(reloaded, compressed.spatial.bits);
        let restored = w
            .press
            .decompress(&CompressedTrajectory {
                spatial: press::core::CompressedSpatial { bits: reloaded },
                temporal: compressed.temporal.clone(),
            })
            .unwrap();
        assert_eq!(restored.path, traj.path);
    }
}

#[test]
fn workload_statistics_match_paper_assumptions() {
    let w = world(41, BtcBounds::lossless());
    // ~10% stationary samples (the paper's observation).
    let f = w.workload.stationary_fraction();
    assert!((0.03..0.4).contains(&f), "stationary fraction {f}");
    // Trips are mostly shortest-path-like: SP compression achieves > 1.5x
    // on the spatial paths.
    let mut orig = 0usize;
    let mut comp = 0usize;
    for r in &w.workload.records {
        orig += r.path.len();
        comp += press::core::spatial::sp_compress(&w.workload.sp, &r.path).len();
    }
    let ratio = orig as f64 / comp as f64;
    assert!(ratio > 1.5, "SP ratio {ratio}");
    // Popular routes repeat (Zipf demand).
    use std::collections::HashMap;
    let mut counts: HashMap<&[EdgeId], usize> = HashMap::new();
    for r in &w.workload.records {
        *counts.entry(r.path.as_slice()).or_default() += 1;
    }
    assert!(counts.values().max().copied().unwrap_or(0) >= 2);
}

#[test]
fn theorem2_tsnd_dominates_tsed() {
    // Theorem 2: with HSC keeping the spatial path exact, the Euclidean
    // deviation at any time (TSED) never exceeds the network-distance
    // deviation (TSND), because Euclidean distance lower-bounds network
    // distance. The theorem's premise is that edge weights ARE physical
    // distances, so this world uses zero weight jitter (jittered weights
    // break the Euclid ≤ network-distance inequality by design).
    let net = Arc::new(grid_network(&GridConfig {
        nx: 10,
        ny: 10,
        spacing: 150.0,
        weight_jitter: 0.0,
        removal_prob: 0.02,
        seed: 55,
    }));
    let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
    let workload = Workload::generate(
        net.clone(),
        sp.clone(),
        WorkloadConfig {
            num_trajectories: 80,
            seed: 55,
            ..WorkloadConfig::default()
        },
    );
    let (train, _) = workload.split(0.4);
    let training_paths: Vec<_> = train.iter().map(|r| r.path.clone()).collect();
    let press = Press::train(
        sp.clone(),
        &training_paths,
        PressConfig {
            bounds: BtcBounds::new(120.0, 40.0),
            ..PressConfig::default()
        },
    )
    .expect("training");
    let w = World {
        net,
        sp,
        press,
        workload,
    };
    let engine = QueryEngine::new(w.press.model());
    let (_, eval) = w.workload.split(0.4);
    let mut checked = 0;
    for record in eval.iter().take(15) {
        let traj = record.truth_trajectory(30.0);
        let compressed = w.press.compress(&traj).unwrap();
        let restored = w.press.decompress(&compressed).unwrap();
        let tsnd_val =
            press::core::temporal::tsnd(&traj.temporal.points, &restored.temporal.points);
        // TSED sampled at the union of both knot sets, positions via the
        // exact shared spatial path.
        let mut tsed_val = 0.0f64;
        for p in traj
            .temporal
            .points
            .iter()
            .chain(restored.temporal.points.iter())
        {
            let a = engine.whereat_raw(&traj, p.t).unwrap();
            let b = engine.whereat_raw(&restored, p.t).unwrap();
            tsed_val = tsed_val.max(a.dist(&b));
        }
        assert!(
            tsed_val <= tsnd_val + 1e-6,
            "Theorem 2 violated: TSED {tsed_val} > TSND {tsnd_val}"
        );
        checked += 1;
    }
    assert!(checked >= 10);
}

#[test]
fn lazy_backend_reproduces_dense_pipeline_bit_for_bit() {
    // The tiered SP engine's contract: swapping the dense table for the
    // lazy cache changes memory behaviour, never answers. Run the whole
    // pipeline (workload -> train -> compress -> decompress -> queries)
    // under both backends and compare outputs exactly.
    let bounds = BtcBounds::new(60.0, 20.0);
    let dense = world(17, bounds);
    let lazy = world_with_backend(17, bounds, SpBackend::Lazy { capacity_trees: 64 });
    assert_eq!(dense.workload.records.len(), lazy.workload.records.len());
    let d_engine = QueryEngine::new(dense.press.model());
    let l_engine = QueryEngine::new(lazy.press.model());
    let (_, eval) = dense.workload.split(0.4);
    for (record, l_record) in eval.iter().zip(lazy.workload.split(0.4).1).take(15) {
        assert_eq!(record.path, l_record.path, "workloads must be identical");
        let traj = record.truth_trajectory(30.0);
        let cd = dense.press.compress(&traj).unwrap();
        let cl = lazy.press.compress(&traj).unwrap();
        assert_eq!(cd, cl, "compressed forms must match bit-for-bit");
        assert_eq!(
            dense.press.decompress(&cd).unwrap().path,
            lazy.press.decompress(&cl).unwrap().path
        );
        let (t0, t1) = traj.temporal.time_range().unwrap();
        for k in 0..=4 {
            let t = t0 + (t1 - t0) * k as f64 / 4.0;
            let a = d_engine.whereat(&cd, t).unwrap();
            let b = l_engine.whereat(&cl, t).unwrap();
            assert!(a.dist(&b) < 1e-12, "whereat differs between backends");
        }
        let total = traj.path.weight(&dense.net);
        let probe = traj.path.point_at(&dense.net, total * 0.5).unwrap();
        match (
            d_engine.whenat(&cd, probe, 0.5),
            l_engine.whenat(&cl, probe, 0.5),
        ) {
            (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            (a, b) => assert_eq!(a.is_err(), b.is_err()),
        }
    }
    // The lazy cache stayed within its configured bound the whole time.
    assert!(lazy.sp.approx_bytes() <= 64 * dense.net.num_nodes() * 16 + (1 << 20));
}
