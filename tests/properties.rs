//! Property-based tests (proptest) over the core invariants:
//!
//! * HSC spatial compression is **lossless** for arbitrary valid paths.
//! * SP compression round-trips and never inflates.
//! * BTC respects its (τ, η) bounds for arbitrary temporal sequences and
//!   equals the quadratic BOPW reference exactly.
//! * Huffman coding round-trips arbitrary symbol streams.
//! * The ZIP/RAR-like byte codecs round-trip arbitrary bytes.
//! * The temporal metrics are symmetric and zero on identical curves.

use press::baselines::{rarx, zipx};
use press::core::spatial::{sp_compress, sp_decompress, HscModel, OnlineSpCompressor};
use press::core::temporal::{bopw_compress, btc_compress, nstd, tsnd, BtcBounds, OnlineBtc};
use press::core::DtPoint;
use press::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

/// Shared fixture: a jittered grid, its SP table, and a trained model.
struct Fixture {
    net: Arc<RoadNetwork>,
    sp: Arc<SpTable>,
    model: Arc<HscModel>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let net = Arc::new(grid_network(&GridConfig {
            nx: 7,
            ny: 7,
            spacing: 100.0,
            weight_jitter: 0.2,
            removal_prob: 0.0,
            seed: 99,
        }));
        let sp = Arc::new(SpTable::build(net.clone()));
        // Train on a few deterministic walks.
        let mut training = Vec::new();
        for s in 0..30u64 {
            training.push(walk_from_choices(
                &net,
                (s % 49) as u32,
                &(0..14)
                    .map(|i| ((s * 31 + i * 7) % 4) as u8)
                    .collect::<Vec<_>>(),
            ));
        }
        let model = Arc::new(HscModel::train(sp.clone(), &training, 3).expect("train"));
        Fixture { net, sp, model }
    })
}

/// Deterministically turns a byte sequence into a valid connected path:
/// each byte picks among the current node's outgoing edges, skipping
/// immediate backtracking when possible.
fn walk_from_choices(net: &RoadNetwork, start: u32, choices: &[u8]) -> Vec<EdgeId> {
    let mut node = NodeId(start % net.num_nodes() as u32);
    let mut path = Vec::with_capacity(choices.len());
    for &c in choices {
        let outs = net.out_edges(node);
        if outs.is_empty() {
            break;
        }
        let non_backtracking: Vec<EdgeId> = outs
            .iter()
            .copied()
            .filter(|&e| {
                path.last()
                    .is_none_or(|&p: &EdgeId| net.edge(e).to != net.edge(p).from)
            })
            .collect();
        let pool = if non_backtracking.is_empty() {
            outs
        } else {
            &non_backtracking[..]
        };
        let e = pool[c as usize % pool.len()];
        path.push(e);
        node = net.edge(e).to;
    }
    path
}

/// Turns proptest-generated increments into a valid temporal sequence
/// (strictly increasing t, non-decreasing d, with stalls).
fn temporal_from_increments(incs: &[(u16, u16)]) -> Vec<DtPoint> {
    let mut d = 0.0f64;
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(incs.len());
    for &(dd, dt) in incs {
        out.push(DtPoint::new(d, t));
        d += dd as f64 / 16.0; // may be zero: a stall
        t += 0.25 + dt as f64 / 64.0; // strictly positive
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hsc_roundtrip_is_lossless(start in 0u32..49, choices in proptest::collection::vec(0u8..8, 0..40)) {
        let f = fixture();
        let path = walk_from_choices(&f.net, start, &choices);
        let cs = f.model.compress(&path).unwrap();
        prop_assert_eq!(f.model.decompress(&cs).unwrap(), path);
    }

    #[test]
    fn sp_compression_roundtrips_and_never_inflates(start in 0u32..49, choices in proptest::collection::vec(0u8..8, 0..40)) {
        let f = fixture();
        let path = walk_from_choices(&f.net, start, &choices);
        let compressed = sp_compress(&f.sp, &path);
        prop_assert!(compressed.len() <= path.len());
        prop_assert_eq!(sp_decompress(&f.sp, &compressed).unwrap(), path);
    }

    #[test]
    fn btc_respects_bounds_and_matches_bopw(
        incs in proptest::collection::vec((0u16..400, 0u16..200), 0..120),
        tau in 0.0f64..60.0,
        eta in 0.0f64..30.0,
    ) {
        let pts = temporal_from_increments(&incs);
        let bounds = BtcBounds::new(tau, eta);
        let fast = btc_compress(&pts, bounds);
        let slow = bopw_compress(&pts, bounds);
        prop_assert_eq!(&fast, &slow, "angular-range and BOPW must agree");
        if !pts.is_empty() {
            prop_assert!(tsnd(&pts, &fast) <= tau + 1e-6);
            prop_assert!(nstd(&pts, &fast) <= eta + 1e-6);
            prop_assert_eq!(fast.first(), pts.first());
            prop_assert_eq!(fast.last(), pts.last());
        }
        // Output is a subsequence of the input.
        let mut it = pts.iter();
        for o in &fast {
            prop_assert!(it.any(|p| p == o));
        }
    }

    #[test]
    fn huffman_roundtrips_arbitrary_streams(
        freqs in proptest::collection::vec(0u64..1000, 2..64),
        stream_seed in proptest::collection::vec(0usize..64, 0..200),
    ) {
        use press::core::spatial::{BitWriter, Huffman};
        let h = Huffman::from_freqs(&freqs).unwrap();
        let symbols: Vec<u32> = stream_seed.iter().map(|&s| (s % freqs.len()) as u32).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            h.encode_symbol(s, &mut w);
        }
        let bits = w.finish();
        let mut r = bits.reader();
        for &s in &symbols {
            prop_assert_eq!(h.decode_symbol(&mut r).unwrap(), s);
        }
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn byte_codecs_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
        prop_assert_eq!(zipx::decompress(&zipx::compress(&data)).unwrap(), data.clone());
        prop_assert_eq!(rarx::decompress(&rarx::compress(&data)).unwrap(), data);
    }

    #[test]
    fn metrics_are_symmetric_and_zero_on_self(
        incs in proptest::collection::vec((0u16..400, 0u16..200), 1..60),
        other in proptest::collection::vec((0u16..400, 0u16..200), 1..60),
    ) {
        let a = temporal_from_increments(&incs);
        let b = temporal_from_increments(&other);
        prop_assert_eq!(tsnd(&a, &a), 0.0);
        prop_assert_eq!(nstd(&a, &a), 0.0);
        prop_assert_eq!(tsnd(&a, &b), tsnd(&b, &a));
        prop_assert_eq!(nstd(&a, &b), nstd(&b, &a));
        prop_assert!(tsnd(&a, &b) >= 0.0);
    }

    #[test]
    fn press_end_to_end_bounds_hold(
        start in 0u32..49,
        choices in proptest::collection::vec(0u8..8, 5..30),
        incs in proptest::collection::vec((1u16..400, 0u16..200), 3..40),
        tau in 0.0f64..100.0,
        eta in 0.0f64..40.0,
    ) {
        let f = fixture();
        let path = walk_from_choices(&f.net, start, &choices);
        prop_assume!(!path.is_empty());
        // Scale distances to the path weight so the temporal curve is
        // consistent with the spatial path.
        let total: f64 = path.iter().map(|&e| f.net.weight(e)).sum();
        let mut pts = temporal_from_increments(&incs);
        let dmax = pts.last().map_or(1.0, |p| p.d.max(1.0));
        for p in &mut pts {
            p.d = p.d / dmax * total;
        }
        let traj = Trajectory::new(
            SpatialPath::new_unchecked(path),
            TemporalSequence::new_unchecked(pts),
        );
        let press = Press::with_model(
            f.model.clone(),
            PressConfig {
                bounds: BtcBounds::new(tau, eta),
                ..PressConfig::default()
            },
        );
        let compressed = press.compress(&traj).unwrap();
        let restored = press.decompress(&compressed).unwrap();
        prop_assert_eq!(&restored.path, &traj.path, "spatial losslessness");
        prop_assert!(tsnd(&traj.temporal.points, &restored.temporal.points) <= tau + 1e-6);
        prop_assert!(nstd(&traj.temporal.points, &restored.temporal.points) <= eta + 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole invariant: on arbitrary jittered grid networks, the lazy
    /// per-source cache returns **bit-identical** distances, predecessor
    /// edges and shortest-path MBRs to the dense all-pair oracle — for
    /// every node pair and a sweep of edge pairs — even with a capacity
    /// small enough to force evictions mid-scan.
    #[test]
    fn lazy_cache_matches_dense_oracle(
        nx in 3usize..7,
        ny in 3usize..7,
        seed in 0u64..1000,
        jitter_milli in 0u32..300,
        capacity in 2usize..12,
    ) {
        let net = Arc::new(grid_network(&GridConfig {
            nx,
            ny,
            spacing: 90.0,
            weight_jitter: jitter_milli as f64 / 1000.0,
            removal_prob: 0.04,
            seed,
        }));
        let dense = SpTable::build(net.clone());
        // Probe budget on: the first lookups per source go through the
        // bounded bidirectional point search, which must be bit-identical
        // too (including the fully tied regime).
        let lazy = LazySpCache::new(
            net.clone(),
            LazySpConfig {
                capacity_trees: capacity,
                shards: 2,
                mbr_capacity: 32,
                point_probe_budget: 3,
            },
        );
        for u in net.node_ids() {
            for v in net.node_ids() {
                prop_assert_eq!(
                    dense.node_dist(u, v).to_bits(),
                    lazy.node_dist(u, v).to_bits(),
                    "distance mismatch {} -> {}", u, v
                );
                prop_assert_eq!(dense.pred_edge(u, v), lazy.pred_edge(u, v));
            }
        }
        let edges: Vec<EdgeId> = net.edge_ids().collect();
        for &ei in edges.iter().step_by(7) {
            for &ej in edges.iter().rev().step_by(11) {
                prop_assert_eq!(dense.sp_end(ei, ej), lazy.sp_end(ei, ej));
                prop_assert_eq!(dense.sp_interior(ei, ej), lazy.sp_interior(ei, ej));
                prop_assert_eq!(dense.sp_mbr(ei, ej), lazy.sp_mbr(ei, ej));
            }
        }
        prop_assert!(lazy.cached_trees() <= lazy.capacity_trees());
    }

    /// Tentpole invariant (PR 2): the contraction-hierarchy backend is
    /// **bit-identical** to the dense all-pair oracle on arbitrary grid
    /// networks — distances, canonical predecessor edges, interiors and
    /// MBRs — including `v == u`, disconnected pairs (`f64::INFINITY` /
    /// `None`), and the zero-jitter regime where shortest paths tie
    /// massively and only the canonical tie-break keeps answers aligned.
    #[test]
    fn ch_matches_dense_oracle(
        nx in 3usize..7,
        ny in 3usize..7,
        seed in 0u64..1000,
        jitter_milli in 0u32..300,
        removal_milli in 0u32..120,
    ) {
        let net = Arc::new(grid_network(&GridConfig {
            nx,
            ny,
            spacing: 90.0,
            weight_jitter: jitter_milli as f64 / 1000.0,
            removal_prob: removal_milli as f64 / 1000.0,
            seed,
        }));
        let dense = SpTable::build(net.clone());
        let ch = ContractionHierarchy::build(net.clone());
        let mut saw_disconnected = false;
        for u in net.node_ids() {
            for v in net.node_ids() {
                let dd = dense.node_dist(u, v);
                let dc = ch.node_dist(u, v);
                prop_assert_eq!(
                    dd.to_bits(), dc.to_bits(),
                    "distance mismatch {} -> {}: dense {} vs ch {}", u, v, dd, dc
                );
                prop_assert_eq!(
                    dense.pred_edge(u, v), ch.pred_edge(u, v),
                    "pred mismatch {} -> {}", u, v
                );
                if u == v {
                    prop_assert_eq!(dc, 0.0);
                    prop_assert_eq!(ch.pred_edge(u, v), None);
                }
                if dd == f64::INFINITY {
                    saw_disconnected = true;
                    prop_assert_eq!(ch.pred_edge(u, v), None);
                }
            }
        }
        let _ = saw_disconnected; // not guaranteed, but exercised when removal hits
        let edges: Vec<EdgeId> = net.edge_ids().collect();
        for &ei in edges.iter().step_by(7) {
            for &ej in edges.iter().rev().step_by(11) {
                prop_assert_eq!(dense.sp_end(ei, ej), ch.sp_end(ei, ej));
                prop_assert_eq!(dense.sp_interior(ei, ej), ch.sp_interior(ei, ej));
                prop_assert_eq!(dense.sp_mbr(ei, ej), ch.sp_mbr(ei, ej));
            }
        }
    }

    /// Tentpole invariant (PR 4): the hub-label backend is
    /// **bit-identical** to the dense all-pair oracle on arbitrary grid
    /// networks — distances, canonical predecessor edges, interiors and
    /// MBRs — including `v == u`, disconnected pairs (`f64::INFINITY` /
    /// `None`), and the zero-jitter regime where shortest paths tie
    /// massively and only the canonical tie handling (strict stalling in
    /// the label searches, minimal-sum meet, left-to-right
    /// re-accumulation) keeps answers aligned.
    #[test]
    fn hl_matches_dense_oracle(
        nx in 3usize..7,
        ny in 3usize..7,
        seed in 0u64..1000,
        jitter_milli in 0u32..300,
        removal_milli in 0u32..120,
    ) {
        let net = Arc::new(grid_network(&GridConfig {
            nx,
            ny,
            spacing: 90.0,
            weight_jitter: jitter_milli as f64 / 1000.0,
            removal_prob: removal_milli as f64 / 1000.0,
            seed,
        }));
        let dense = SpTable::build(net.clone());
        let hl = HubLabels::build(net.clone());
        for u in net.node_ids() {
            for v in net.node_ids() {
                let dd = dense.node_dist(u, v);
                let dh = hl.node_dist(u, v);
                prop_assert_eq!(
                    dd.to_bits(), dh.to_bits(),
                    "distance mismatch {} -> {}: dense {} vs hl {}", u, v, dd, dh
                );
                prop_assert_eq!(
                    dense.pred_edge(u, v), hl.pred_edge(u, v),
                    "pred mismatch {} -> {}", u, v
                );
                if u == v {
                    prop_assert_eq!(dh, 0.0);
                    prop_assert_eq!(hl.pred_edge(u, v), None);
                }
                if dd == f64::INFINITY {
                    prop_assert_eq!(hl.pred_edge(u, v), None);
                }
            }
        }
        let edges: Vec<EdgeId> = net.edge_ids().collect();
        for &ei in edges.iter().step_by(7) {
            for &ej in edges.iter().rev().step_by(11) {
                prop_assert_eq!(dense.sp_end(ei, ej), hl.sp_end(ei, ej));
                prop_assert_eq!(dense.sp_interior(ei, ej), hl.sp_interior(ei, ej));
                prop_assert_eq!(dense.sp_mbr(ei, ej), hl.sp_mbr(ei, ej));
            }
        }
    }

    /// Full-pipeline bit-identity: training and compressing the same
    /// corpus over the CH and HL backends yields byte-identical output to
    /// the dense oracle (the property `sp_backend_report` asserts at
    /// scale).
    #[test]
    fn ch_and_hl_pipeline_output_matches_dense(
        seed in 0u64..200,
        starts in proptest::collection::vec((0u32..36, proptest::collection::vec(0u8..6, 4..18)), 8..20),
    ) {
        let net = Arc::new(grid_network(&GridConfig {
            nx: 6,
            ny: 6,
            spacing: 100.0,
            weight_jitter: if seed % 2 == 0 { 0.2 } else { 0.0 },
            removal_prob: 0.03,
            seed,
        }));
        let paths: Vec<Vec<EdgeId>> = starts
            .iter()
            .map(|(s, choices)| walk_from_choices(&net, *s, choices))
            .filter(|p| !p.is_empty())
            .collect();
        prop_assume!(paths.len() >= 4);
        let dense: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
        let ch: Arc<dyn SpProvider> = Arc::new(ContractionHierarchy::build(net.clone()));
        let hl: Arc<dyn SpProvider> = Arc::new(HubLabels::build(net.clone()));
        let split = paths.len() / 2;
        let md = HscModel::train(dense, &paths[..split], 3).unwrap();
        let mc = HscModel::train(ch, &paths[..split], 3).unwrap();
        let mh = HscModel::train(hl, &paths[..split], 3).unwrap();
        for p in &paths[split..] {
            let cd = md.compress(p).unwrap();
            let cc = mc.compress(p).unwrap();
            let ch_ = mh.compress(p).unwrap();
            prop_assert_eq!(&cd, &cc, "compressed bits differ between dense and CH");
            prop_assert_eq!(&cd, &ch_, "compressed bits differ between dense and HL");
            prop_assert_eq!(mc.decompress(&cc).unwrap(), p.clone());
            prop_assert_eq!(mh.decompress(&ch_).unwrap(), p.clone());
        }
    }

    /// Tentpole invariant (PR 5): batched independent-set contraction is
    /// a **pure function of the network** — the worker count used for
    /// the parallel priority and witness phases never leaks into the
    /// result. The rank order, shortcut arcs, and the serialized
    /// `sp_ch.press` bytes are byte-identical across 1/2/3/7 workers,
    /// and so are the `sp_hl.press` bytes of the labeling derived from
    /// each hierarchy — jittered and fully tied regimes both.
    #[test]
    fn contraction_artifacts_are_thread_count_invariant(
        nx in 3usize..7,
        ny in 3usize..7,
        seed in 0u64..1000,
        tied in any::<bool>(),
        removal_milli in 0u32..120,
    ) {
        let net = Arc::new(grid_network(&GridConfig {
            nx,
            ny,
            spacing: 90.0,
            weight_jitter: if tied { 0.0 } else { 0.2 },
            removal_prob: removal_milli as f64 / 1000.0,
            seed,
        }));
        let reference = ContractionHierarchy::build_with(
            net.clone(),
            ChConfig { threads: 1, ..ChConfig::default() },
        );
        let ch_bytes = reference.to_store_bytes();
        let hl_bytes = HubLabels::from_ch(&reference, 1).to_store_bytes();
        for threads in [2usize, 3, 7] {
            let multi = ContractionHierarchy::build_with(
                net.clone(),
                ChConfig { threads, ..ChConfig::default() },
            );
            prop_assert_eq!(
                &ch_bytes,
                &multi.to_store_bytes(),
                "sp_ch.press bytes differ at {} workers", threads
            );
            prop_assert_eq!(
                &hl_bytes,
                &HubLabels::from_ch(&multi, threads).to_store_bytes(),
                "sp_hl.press bytes differ at {} workers", threads
            );
        }
    }

    /// Cache-eviction stress: hammering every source under a tiny budget
    /// keeps residency (and therefore memory) bounded while answers stay
    /// equal to the oracle — evicted trees are recomputed, not lost.
    #[test]
    fn lazy_cache_memory_stays_bounded_under_churn(
        seed in 0u64..1000,
        capacity in 1usize..6,
        rounds in 1usize..4,
    ) {
        let net = Arc::new(grid_network(&GridConfig {
            nx: 6,
            ny: 6,
            spacing: 100.0,
            weight_jitter: 0.2,
            removal_prob: 0.0,
            seed,
        }));
        // Probes off: this test measures tree churn, so every miss must
        // actually build (and evict) a tree.
        let lazy = LazySpCache::new(
            net.clone(),
            LazySpConfig {
                capacity_trees: capacity,
                shards: 1,
                mbr_capacity: 8,
                point_probe_budget: 0,
            },
        );
        let per_tree_bytes = net.num_nodes() * 16;
        let bound = lazy.capacity_trees() * per_tree_bytes + 8 * 64;
        for _ in 0..rounds {
            for u in net.node_ids() {
                let _ = lazy.node_dist(u, NodeId(0));
                prop_assert!(lazy.cached_trees() <= lazy.capacity_trees());
                prop_assert!(
                    lazy.approx_bytes() <= bound,
                    "resident bytes {} exceed bound {}", lazy.approx_bytes(), bound
                );
            }
        }
        let stats = lazy.stats();
        prop_assert!(stats.tree_evictions > 0, "churn must evict under capacity {}", capacity);
        // Spot-check correctness after heavy eviction.
        let dense = SpTable::build(net.clone());
        for u in net.node_ids().take(8) {
            for v in net.node_ids() {
                prop_assert_eq!(dense.node_dist(u, v).to_bits(), lazy.node_dist(u, v).to_bits());
            }
        }
    }
}

/// Separate (non-proptest) check: the greedy SP compression is optimal on
/// small paths — no alternative valid "skip" subset is shorter. Exhaustive
/// over all subsets for paths up to 10 edges.
#[test]
fn greedy_sp_is_optimal_exhaustively() {
    let f = fixture();
    let paths: Vec<Vec<EdgeId>> = (0..20u64)
        .map(|s| {
            walk_from_choices(
                &f.net,
                (s * 13 % 49) as u32,
                &(0..9)
                    .map(|i| ((s * 17 + i * 3) % 5) as u8)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    for path in paths.iter().filter(|p| p.len() >= 3) {
        let greedy = sp_compress(&f.sp, path);
        let n = path.len();
        // Enumerate subsets of interior edges to keep; a subset is valid if
        // expanding consecutive kept edges by shortest paths reproduces the
        // original path.
        let interior = n - 2;
        let mut best = n;
        for mask in 0..(1u32 << interior) {
            let mut kept = vec![path[0]];
            for (i, &e) in path.iter().enumerate().skip(1).take(interior) {
                if mask & (1 << (i - 1)) != 0 {
                    kept.push(e);
                }
            }
            kept.push(path[n - 1]);
            if let Ok(expanded) = sp_decompress(&f.sp, &kept) {
                if expanded == *path {
                    best = best.min(kept.len());
                }
            }
        }
        assert_eq!(
            greedy.len(),
            best,
            "greedy must match the exhaustive optimum for {path:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming compressors under **arbitrary push chunking**: feeding
    /// the stream one element at a time and closing it at ANY prefix — a
    /// cloned encoder `finish()`ed mid-stream — is bit-identical to the
    /// batch compressor over exactly that prefix, and the mid-stream
    /// clone never perturbs the continuing encoder. This is the invariant
    /// the press-serve ingest engine's segmentation (idle timeouts,
    /// session caps, crash-recovery replay) is built on.
    #[test]
    fn online_sp_equals_batch_at_every_cut(
        start in 0u32..49,
        choices in proptest::collection::vec(0u8..8, 0..24),
    ) {
        let f = fixture();
        let path = walk_from_choices(&f.net, start, &choices);
        let sp: Arc<dyn SpProvider> = f.sp.clone();
        let mut enc = OnlineSpCompressor::new(sp.clone());
        let mut emitted: Vec<EdgeId> = Vec::new();
        // Empty stream: finish alone emits nothing, batch agrees.
        prop_assert_eq!(OnlineSpCompressor::new(sp.clone()).finish(), sp_compress(&f.sp, &[]));
        for (i, &e) in path.iter().enumerate() {
            emitted.extend(enc.push(e));
            // Cut here: emitted-so-far + a cloned finish == batch(prefix).
            let mut cut = emitted.clone();
            cut.extend(enc.clone().finish());
            prop_assert_eq!(&cut, &sp_compress(&f.sp, &path[..=i]), "cut after edge {}", i);
            // Already-emitted output is a committed prefix of every cut.
            prop_assert!(cut.len() >= emitted.len());
        }
    }

    #[test]
    fn online_btc_equals_batch_at_every_cut(
        incs in proptest::collection::vec((0u16..400, 0u16..200), 0..40),
        tau in 0.0f64..60.0,
        eta in 0.0f64..30.0,
    ) {
        let pts = temporal_from_increments(&incs);
        let bounds = BtcBounds::new(tau, eta);
        prop_assert!(OnlineBtc::new(bounds).finish().is_empty());
        let mut enc = OnlineBtc::new(bounds);
        let mut emitted: Vec<DtPoint> = Vec::new();
        for (i, &p) in pts.iter().enumerate() {
            emitted.extend(enc.push(p));
            let mut cut = emitted.clone();
            cut.extend(enc.clone().finish());
            prop_assert_eq!(&cut, &btc_compress(&pts[..=i], bounds), "cut after tuple {}", i);
            prop_assert!(cut.len() >= emitted.len());
        }
    }
}
