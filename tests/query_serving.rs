//! Indexed query serving equals brute force — always.
//!
//! The synopsis index and the batch executor are pure accelerations:
//! for every corpus shape (empty, single-block, all-tied MBRs, staggered
//! time spans) and every query kind (`range`/`whenat`/`whereat`, single
//! and batched at 1/2/3/7 workers), the indexed answer must equal the
//! brute-force scan over the in-memory compressed trajectories, and the
//! indexed `range` must equal the linear directory walk bit-for-bit.

use press::core::query::QueryEngine;
use press::core::{QueryBatch, StoreAnswer, StoreQuery, TrajectoryStore};
use press::prelude::*;
use press::workload::{query_mix, QueryMixConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministically turns choice bytes into a valid connected path.
fn walk_from_choices(net: &RoadNetwork, start: u32, choices: &[u8]) -> Vec<EdgeId> {
    let mut node = NodeId(start % net.num_nodes() as u32);
    let mut path: Vec<EdgeId> = Vec::with_capacity(choices.len());
    for &c in choices {
        let out = net.out_edges(node);
        if out.is_empty() {
            break;
        }
        let candidates: Vec<EdgeId> = out
            .iter()
            .copied()
            .filter(|&e| {
                path.last()
                    .is_none_or(|&p| net.edge(e).to != net.edge(p).from)
            })
            .collect();
        let pool = if candidates.is_empty() {
            out.to_vec()
        } else {
            candidates
        };
        let e = pool[c as usize % pool.len()];
        path.push(e);
        node = net.edge(e).to;
    }
    path
}

/// Builds a corpus of `n` trajectories. `tied` repeats one path and one
/// time span for every trajectory (all-tied MBRs and spans — the worst
/// case for any index); otherwise paths vary and starts are staggered by
/// `stagger` seconds.
fn corpus(n: usize, tied: bool, stagger: f64, seed: u64) -> (Press, Vec<CompressedTrajectory>) {
    let net = Arc::new(grid_network(&GridConfig {
        nx: 5,
        ny: 5,
        spacing: 120.0,
        weight_jitter: 0.1,
        removal_prob: 0.0,
        seed,
    }));
    let sp = SpBackend::Dense.build(net.clone());
    let mut training = Vec::new();
    for s in 0..20u64 {
        let choices: Vec<u8> = (0..12)
            .map(|i| ((s * 7 + i * 3 + seed) % 5) as u8)
            .collect();
        let p = walk_from_choices(&net, (s * 3) as u32, &choices);
        if p.len() >= 3 {
            training.push(p);
        }
    }
    let press = Press::train(sp, &training, PressConfig::default()).expect("train");
    let trajs: Vec<Trajectory> = (0..n)
        .map(|k| {
            let p = if tied {
                training[0].clone()
            } else {
                training[k % training.len()].clone()
            };
            let total: f64 = p.iter().map(|&e| net.weight(e)).sum();
            let t0 = if tied { 0.0 } else { k as f64 * stagger };
            let pts = vec![
                DtPoint::new(0.0, t0),
                DtPoint::new(total / 2.0, t0 + 45.0),
                DtPoint::new(total, t0 + 90.0),
            ];
            Trajectory::new(
                SpatialPath::new_unchecked(p),
                TemporalSequence::new(pts).expect("temporal"),
            )
        })
        .collect();
    let compressed = trajs
        .iter()
        .map(|t| press.compress(t).expect("compress"))
        .collect();
    (press, compressed)
}

/// Brute-force oracle over the in-memory compressed corpus, with the
/// same domain-miss folding as the batch executor.
fn brute(engine: &QueryEngine<'_>, cts: &[CompressedTrajectory], q: &StoreQuery) -> StoreAnswer {
    let folded = |r: Result<StoreAnswer, PressError>| match r {
        Ok(a) => a,
        Err(PressError::OutOfDomain(msg)) => StoreAnswer::Miss(msg),
        Err(e) => panic!("oracle hit a hard error: {e}"),
    };
    match *q {
        StoreQuery::Range { t1, t2, ref region } => {
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let mut hits = Vec::new();
            for (i, ct) in cts.iter().enumerate() {
                let Some((a, z)) = ct.temporal.time_range() else {
                    continue;
                };
                if z < lo || a > hi {
                    continue;
                }
                if engine.range(ct, lo, hi, region).expect("oracle range") {
                    hits.push(i);
                }
            }
            StoreAnswer::Hits(hits)
        }
        StoreQuery::WhenAt { idx, p, tolerance } => match cts.get(idx) {
            None => StoreAnswer::Miss(String::new()),
            Some(ct) => folded(engine.whenat(ct, p, tolerance).map(StoreAnswer::Time)),
        },
        StoreQuery::WhereAt { idx, t } => match cts.get(idx) {
            None => StoreAnswer::Miss(String::new()),
            Some(ct) => folded(engine.whereat(ct, t).map(StoreAnswer::Position)),
        },
    }
}

/// Collapses miss messages: the store's fast-reject paths may phrase a
/// miss differently from the in-memory engine; *that* a query misses is
/// the contract, the wording is not.
fn canon(a: &StoreAnswer) -> StoreAnswer {
    match a {
        StoreAnswer::Miss(_) => StoreAnswer::Miss(String::new()),
        other => other.clone(),
    }
}

/// The mixed query workload for a corpus of `n` trajectories, plus
/// hand-picked edge probes (out-of-range ids, reversed/degenerate
/// windows, far-future windows).
fn queries_for(n: usize, seed: u64) -> Vec<StoreQuery> {
    let mut qs = query_mix(&QueryMixConfig {
        num_queries: 40,
        seed,
        range_fraction: if n == 0 { 1.0 } else { 0.5 },
        bbox: Mbr::new(0.0, 0.0, 600.0, 600.0),
        t_min: 0.0,
        t_max: 1500.0,
        window_fraction: 0.05,
        region_fraction: 0.4,
        miss_fraction: 0.25,
        hotspot_fraction: 0.3,
        hotspot_pool: 4,
        num_trajectories: n.max(1),
    });
    let region = Mbr::new(0.0, 0.0, 600.0, 600.0);
    qs.push(StoreQuery::Range {
        t1: 500.0,
        t2: 100.0, // reversed window
        region,
    });
    qs.push(StoreQuery::Range {
        t1: 42.0,
        t2: 42.0, // zero-width window
        region,
    });
    qs.push(StoreQuery::Range {
        t1: 1e12,
        t2: 2e12, // far future: index answers without decoding
        region,
    });
    qs.push(StoreQuery::WhereAt { idx: n + 3, t: 0.0 }); // out-of-range id
    qs.push(StoreQuery::WhenAt {
        idx: n + 3,
        p: Point::new(0.0, 0.0),
        tolerance: 10.0,
    });
    qs
}

fn check_store(press: &Press, cts: &[CompressedTrajectory], block_size: usize, seed: u64) {
    let engine = QueryEngine::new(press.model());
    let store = TrajectoryStore::from_store_bytes(
        TrajectoryStore::to_store_bytes(&engine, cts, block_size).expect("store bytes"),
    )
    .expect("store load");
    assert_eq!(store.len(), cts.len());
    let qs = queries_for(cts.len(), seed);
    let batch = QueryBatch::from_queries(qs.clone());
    let reference = batch.run(&store, &engine, 1).expect("batch");
    // 1 worker == 2 == 3 == 7, bit-for-bit.
    for threads in [2usize, 3, 7] {
        assert_eq!(
            batch.run(&store, &engine, threads).expect("batch"),
            reference,
            "{threads} workers diverged"
        );
    }
    for (q, got) in qs.iter().zip(&reference) {
        // Batched indexed answer equals the brute-force oracle.
        assert_eq!(canon(got), canon(&brute(&engine, cts, q)), "query {q:?}");
        // And the indexed range equals the linear directory walk exactly.
        if let StoreQuery::Range { t1, t2, region } = q {
            assert_eq!(
                store.range(&engine, *t1, *t2, region).expect("indexed"),
                store
                    .range_linear(&engine, *t1, *t2, region)
                    .expect("linear"),
                "indexed vs linear range diverged for {q:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random corpora × random block sizes × degenerate switches: every
    /// indexed query (single and batched, 1/2/3/7 workers) equals brute
    /// force.
    #[test]
    fn indexed_serving_equals_brute_force(
        n in 0usize..24,
        block_size in 1usize..9,
        tied in 0u8..2,
        stagger_sel in 0u8..3,
        seed in 0u64..200,
    ) {
        let stagger = [0.0, 30.0, 400.0][stagger_sel as usize];
        let (press, cts) = corpus(n, tied == 1, stagger, seed);
        check_store(&press, &cts, block_size, seed);
    }
}

/// The empty store: still loads, still answers every query kind.
#[test]
fn empty_store_serves() {
    let (press, cts) = corpus(0, false, 0.0, 3);
    check_store(&press, &cts, 4, 3);
}

/// Single-block store (block_size > n): the hierarchy is one leaf.
#[test]
fn single_block_store_serves() {
    let (press, cts) = corpus(7, false, 120.0, 5);
    check_store(&press, &cts, 64, 5);
}

/// All-tied MBRs and time spans: the index can skip nothing, but must
/// still answer exactly.
#[test]
fn all_tied_corpus_serves() {
    let (press, cts) = corpus(18, true, 0.0, 8);
    check_store(&press, &cts, 3, 8);
}
