//! Property tests for the press-store artifact tier: save → load → query
//! must be **bit-identical** to the in-memory path for every SP backend
//! and for the trained HSC model, and every corruption mode (truncation,
//! bit flips, wrong magic/version/kind) must yield a typed error — never
//! a panic, never a silently wrong structure.

use press::core::query::QueryEngine;
use press::core::spatial::HscModel;
use press::core::TrajectoryStore;
use press::network::{
    grid_network, ContractionHierarchy, GridConfig, HubLabels, LazySpCache, RoadNetwork,
    SpProvider, SpTable,
};
use press::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A (freshly built, loaded-from-store, label) provider triple.
type ProviderPair = (Arc<dyn SpProvider>, Arc<dyn SpProvider>, &'static str);

/// A small jittered grid from proptest-drawn parameters.
fn net_from(nx: usize, ny: usize, jitter: f64, seed: u64) -> Arc<RoadNetwork> {
    Arc::new(grid_network(&GridConfig {
        nx,
        ny,
        spacing: 120.0,
        weight_jitter: jitter,
        removal_prob: 0.05,
        seed,
    }))
}

/// Deterministically turns choice bytes into a valid connected path.
fn walk_from_choices(net: &RoadNetwork, start: u32, choices: &[u8]) -> Vec<EdgeId> {
    let mut node = NodeId(start % net.num_nodes() as u32);
    let mut path: Vec<EdgeId> = Vec::with_capacity(choices.len());
    for &c in choices {
        let out = net.out_edges(node);
        if out.is_empty() {
            break;
        }
        let candidates: Vec<EdgeId> = out
            .iter()
            .copied()
            .filter(|&e| {
                path.last()
                    .is_none_or(|&p| net.edge(e).to != net.edge(p).from)
            })
            .collect();
        let pool = if candidates.is_empty() {
            out.to_vec()
        } else {
            candidates
        };
        let e = pool[c as usize % pool.len()];
        path.push(e);
        node = net.edge(e).to;
    }
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four SP backends: the loaded structure answers node_dist /
    /// pred_edge / sp_mbr bit-identically to the built one on random
    /// networks.
    #[test]
    fn sp_backends_roundtrip_bit_identically(
        nx in 3usize..6,
        ny in 3usize..6,
        jitter in 0.0f64..0.3,
        seed in 0u64..500,
    ) {
        let net = net_from(nx, ny, jitter, seed);
        let dense = SpTable::build(net.clone());
        let dense_loaded =
            SpTable::from_store_bytes(net.clone(), dense.to_store_bytes()).expect("dense load");
        let lazy = LazySpCache::with_default_config(net.clone());
        for u in net.node_ids() {
            // tree(), not node_dist(): distance probes deliberately stay
            // treeless now, and this test wants a warm resident set.
            let _ = lazy.tree(u);
        }
        let lazy_loaded =
            LazySpCache::from_store_bytes(net.clone(), lazy.to_store_bytes()).expect("lazy load");
        let ch = ContractionHierarchy::build(net.clone());
        let ch_loaded =
            ContractionHierarchy::from_store_bytes(net.clone(), ch.to_store_bytes())
                .expect("ch load");
        let hl = HubLabels::from_ch(&ch, 2);
        let hl_loaded =
            HubLabels::from_store_bytes(net.clone(), hl.to_store_bytes()).expect("hl load");
        let pairs: Vec<ProviderPair> = vec![
            (Arc::new(dense), Arc::new(dense_loaded), "dense"),
            (Arc::new(lazy), Arc::new(lazy_loaded), "lazy"),
            (Arc::new(ch), Arc::new(ch_loaded), "ch"),
            (Arc::new(hl), Arc::new(hl_loaded), "hl"),
        ];
        for (fresh, warm, name) in &pairs {
            for u in net.node_ids() {
                for v in net.node_ids() {
                    prop_assert_eq!(
                        fresh.node_dist(u, v).to_bits(),
                        warm.node_dist(u, v).to_bits(),
                        "{} node_dist({}, {})", name, u, v
                    );
                    prop_assert_eq!(
                        fresh.pred_edge(u, v),
                        warm.pred_edge(u, v),
                        "{} pred_edge({}, {})", name, u, v
                    );
                }
            }
            let edges: Vec<EdgeId> = net.edge_ids().collect();
            for &ei in edges.iter().step_by(7) {
                for &ej in edges.iter().rev().step_by(11) {
                    prop_assert_eq!(fresh.sp_end(ei, ej), warm.sp_end(ei, ej));
                    prop_assert_eq!(fresh.sp_mbr(ei, ej), warm.sp_mbr(ei, ej));
                }
            }
        }
    }

    /// The persisted HSC model compresses, decompresses, and answers
    /// whereat/whenat queries bit-identically to the trained one.
    #[test]
    fn hsc_model_roundtrips_bit_identically(
        seed in 0u64..300,
        starts in proptest::collection::vec((0u32..1000, proptest::collection::vec(0u8..8, 4..20)), 6..14),
    ) {
        let net = net_from(5, 5, 0.15, seed);
        let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
        let training: Vec<Vec<EdgeId>> = starts
            .iter()
            .map(|(s, cs)| walk_from_choices(&net, *s, cs))
            .filter(|p| !p.is_empty())
            .collect();
        prop_assume!(!training.is_empty());
        let model = HscModel::train(sp.clone(), &training, 3).expect("train");
        let loaded = HscModel::from_store_bytes(sp, model.to_store_bytes()).expect("load");
        for path in &training {
            let a = model.compress(path).expect("compress fresh");
            let b = loaded.compress(path).expect("compress loaded");
            prop_assert_eq!(&a, &b, "compressed bits differ");
            prop_assert_eq!(
                model.decompress(&a).expect("decompress"),
                loaded.decompress(&b).expect("decompress loaded")
            );
        }
        // Query engines over both models agree bit-for-bit.
        let fresh_engine = QueryEngine::new(&model);
        let warm_engine = QueryEngine::new(&loaded);
        for path in training.iter().take(4) {
            let total: f64 = path.iter().map(|&e| net.weight(e)).sum();
            let pts = vec![DtPoint::new(0.0, 0.0), DtPoint::new(total, 60.0)];
            let ct = CompressedTrajectory {
                spatial: model.compress(path).expect("compress"),
                temporal: press::core::TemporalSequence::new(pts).expect("temporal"),
            };
            for k in 0..5 {
                let t = 60.0 * k as f64 / 4.0;
                let a = fresh_engine.whereat(&ct, t).expect("whereat");
                let b = warm_engine.whereat(&ct, t).expect("whereat loaded");
                prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
                prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
            }
        }
    }

    /// The mapped open path under single-byte corruption: opening a
    /// damaged artifact through the zero-copy tier either fails with a
    /// typed error (at the O(metadata) open or at first touch inside
    /// `validate`) or yields a provider whose answers are bit-identical
    /// to the freshly built one — never a panic, never a silently wrong
    /// structure. Flips landing in sections the mapped path never reads
    /// (the compact `_c` payloads, alignment gaps, their stored CRCs)
    /// are *allowed* to go unnoticed: that deferral is the lazy-CRC
    /// contract, and the answers must still match exactly.
    #[test]
    fn mapped_single_byte_corruption_never_panics(
        seed in 0u64..200,
        flip in 0usize..4096,
        bit in 0u8..8,
        which in 0usize..2,
    ) {
        let net = net_from(4, 4, 0.1, seed);
        let ch = ContractionHierarchy::build(net.clone());
        let (fresh, mut bytes): (Arc<dyn SpProvider>, Vec<u8>) = if which == 0 {
            let bytes = ch.to_store_bytes();
            (Arc::new(ch), bytes)
        } else {
            let hl = HubLabels::from_ch(&ch, 1);
            let bytes = hl.to_store_bytes();
            (Arc::new(hl), bytes)
        };
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        let path = std::env::temp_dir().join(format!(
            "press-mapcorrupt-{}-{}-{}-{}-{}.press",
            std::process::id(), seed, flip, bit, which
        ));
        std::fs::write(&path, &bytes).expect("write corrupted artifact");
        let loaded: Result<Arc<dyn SpProvider>, press_store::StoreError> = if which == 0 {
            MappedContractionHierarchy::open(net.clone(), &path)
                .and_then(|m| m.validate())
                .map(|c| Arc::new(c) as Arc<dyn SpProvider>)
        } else {
            MappedHubLabels::open(net.clone(), &path)
                .and_then(|m| m.validate())
                .map(|h| Arc::new(h) as Arc<dyn SpProvider>)
        };
        let _ = std::fs::remove_file(&path);
        match loaded {
            Err(_) => {}
            Ok(loaded) => {
                for u in net.node_ids().take(6) {
                    for v in net.node_ids().take(6) {
                        prop_assert_eq!(
                            fresh.node_dist(u, v).to_bits(),
                            loaded.node_dist(u, v).to_bits()
                        );
                        prop_assert_eq!(fresh.pred_edge(u, v), loaded.pred_edge(u, v));
                    }
                }
            }
        }
    }

    /// Corrupting any single byte of any artifact yields a typed error or
    /// an unchanged (still-valid) load — never a panic and never a
    /// structurally different artifact that answers differently. Covers
    /// both the hierarchy and the hub-label artifacts (the two compact
    /// delta+varint formats).
    #[test]
    fn single_byte_corruption_never_panics(
        seed in 0u64..200,
        flip in 0usize..4096,
        bit in 0u8..8,
        which in 0usize..2,
    ) {
        let net = net_from(4, 4, 0.1, seed);
        let ch = ContractionHierarchy::build(net.clone());
        let fresh: Arc<dyn SpProvider> = if which == 0 {
            Arc::new(ContractionHierarchy::from_store_bytes(net.clone(), ch.to_store_bytes()).expect("ch reload"))
        } else {
            Arc::new(HubLabels::from_ch(&ch, 1))
        };
        let bytes = if which == 0 {
            ch.to_store_bytes()
        } else {
            HubLabels::from_ch(&ch, 1).to_store_bytes()
        };
        let idx = flip % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= 1 << bit;
        let loaded: Result<Arc<dyn SpProvider>, press_store::StoreError> = if which == 0 {
            ContractionHierarchy::from_store_bytes(net.clone(), corrupted)
                .map(|c| Arc::new(c) as Arc<dyn SpProvider>)
        } else {
            HubLabels::from_store_bytes(net.clone(), corrupted)
                .map(|h| Arc::new(h) as Arc<dyn SpProvider>)
        };
        match loaded {
            // CRCs catch payload damage; header damage is typed.
            Err(_) => {}
            Ok(loaded) => {
                // A flip that still loads must have hit dead bytes
                // (section padding/reserved): answers are unchanged.
                for u in net.node_ids().take(6) {
                    for v in net.node_ids().take(6) {
                        prop_assert_eq!(
                            fresh.node_dist(u, v).to_bits(),
                            loaded.node_dist(u, v).to_bits()
                        );
                    }
                }
            }
        }
    }
}

/// Non-proptest corruption matrix: the exact typed error per mode.
#[test]
fn corruption_modes_are_typed() {
    use press_store::StoreError;
    let net = net_from(4, 4, 0.12, 7);
    let table = SpTable::build(net.clone());
    let good = table.to_store_bytes();

    // Truncated file (every prefix).
    for cut in [0, 7, 23, good.len() / 2, good.len() - 1] {
        let err = SpTable::from_store_bytes(net.clone(), good[..cut].to_vec());
        assert!(err.is_err(), "cut at {cut} must fail");
    }
    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(
        SpTable::from_store_bytes(net.clone(), bad),
        Err(StoreError::BadMagic)
    ));
    // Wrong version.
    let mut bad = good.clone();
    bad[8] = 77;
    assert!(matches!(
        SpTable::from_store_bytes(net.clone(), bad),
        Err(StoreError::UnsupportedVersion { found: 77, .. })
    ));
    // Wrong artifact kind: feed the network file to the table loader.
    assert!(matches!(
        SpTable::from_store_bytes(net.clone(), net.to_store_bytes()),
        Err(StoreError::WrongKind { .. })
    ));
    // Payload bit flip: CRC catches it.
    let mut bad = good.clone();
    let n = bad.len();
    bad[n - 10] ^= 0x08;
    assert!(matches!(
        SpTable::from_store_bytes(net.clone(), bad),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

/// Mapped flat-section corruption matrix: a bit flip inside a flat
/// (mapped-tier) section of the hierarchy, hub-label, or corpus
/// artifact is invisible to the O(metadata) `open` — the damaged bytes
/// have not been read yet — and surfaces as a typed
/// `StoreError::ChecksumMismatch` on first touch: `validate()` for the
/// SP artifacts, the first decode of the damaged block for the corpus.
/// The flat payloads are declared last, so flipping the final file
/// bytes deterministically lands in a flat section.
#[test]
fn mapped_flat_section_bit_flip_is_typed_checksum_error_on_first_touch() {
    use press_store::StoreError;
    let net = net_from(5, 5, 0.12, 23);
    let dir = std::env::temp_dir().join(format!("press-map-flip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Contraction hierarchy: open is fine, validate reports the damage.
    let ch = ContractionHierarchy::build(net.clone());
    let mut bytes = ch.to_store_bytes();
    let n = bytes.len();
    bytes[n - 1] ^= 0x04;
    let path = dir.join("sp_ch.press");
    std::fs::write(&path, &bytes).expect("write");
    let mapped = MappedContractionHierarchy::open(net.clone(), &path)
        .expect("mapped open is O(metadata); the flipped byte is unread");
    assert!(matches!(
        mapped.validate(),
        Err(StoreError::ChecksumMismatch { .. })
    ));

    // Hub labels: same two-phase contract.
    let hl = HubLabels::from_ch(&ch, 1);
    let mut bytes = hl.to_store_bytes();
    let n = bytes.len();
    bytes[n - 1] ^= 0x40;
    let path = dir.join("sp_hl.press");
    std::fs::write(&path, &bytes).expect("write");
    let mapped = MappedHubLabels::open(net.clone(), &path)
        .expect("mapped open is O(metadata); the flipped byte is unread");
    assert!(matches!(
        mapped.validate(),
        Err(StoreError::ChecksumMismatch { .. })
    ));

    // Corpus: blocks decode lazily, so a flip in the last block is
    // reported by the first `get` that touches it — earlier blocks and
    // the open itself stay clean.
    let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
    let mut training = Vec::new();
    for s in 0..14u64 {
        let choices: Vec<u8> = (0..12).map(|i| ((s * 7 + i * 3) % 5) as u8).collect();
        let p = walk_from_choices(&net, (s * 5) as u32, &choices);
        if p.len() >= 3 {
            training.push(p);
        }
    }
    let model = HscModel::train(sp, &training, 3).expect("train");
    let press = Press::with_model(Arc::new(model), PressConfig::default());
    let compressed: Vec<CompressedTrajectory> = training
        .iter()
        .map(|p| {
            let total: f64 = p.iter().map(|&e| net.weight(e)).sum();
            let traj = Trajectory::new(
                SpatialPath::new_unchecked(p.clone()),
                TemporalSequence::new(vec![DtPoint::new(0.0, 0.0), DtPoint::new(total, 60.0)])
                    .expect("temporal"),
            );
            press.compress(&traj).expect("compress")
        })
        .collect();
    let engine = QueryEngine::new(press.model());
    let mut bytes = TrajectoryStore::to_store_bytes(&engine, &compressed, 4).expect("bytes");
    let n = bytes.len();
    bytes[n - 2] ^= 0x20;
    let path = dir.join("corpus.press");
    std::fs::write(&path, &bytes).expect("write");
    let store = TrajectoryStore::open_mapped(&path).expect("mapped corpus open defers block CRCs");
    assert!(store.is_mapped());
    assert_eq!(
        store.get(0).expect("first block is undamaged"),
        compressed[0]
    );
    assert!(matches!(
        store.get(compressed.len() - 1),
        Err(PressError::Store(StoreError::ChecksumMismatch { .. }))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `TrajectoryStore::open` corruption matrix: the 0-byte file (a crash
/// between `create` and the first write) and a file truncated in the
/// middle of the section directory (a torn multi-sector write) must both
/// yield typed errors — never a panic, never a partially-valid store.
#[test]
fn trajectory_store_open_rejects_empty_and_torn_directory() {
    use press_store::StoreError;
    let net = net_from(5, 5, 0.1, 13);
    let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
    let mut training = Vec::new();
    for s in 0..12u64 {
        let choices: Vec<u8> = (0..10).map(|i| ((s * 11 + i * 3) % 5) as u8).collect();
        let p = walk_from_choices(&net, (s * 5) as u32, &choices);
        if p.len() >= 3 {
            training.push(p);
        }
    }
    let model = HscModel::train(sp, &training, 3).expect("train");
    let press = Press::with_model(Arc::new(model), PressConfig::default());
    let compressed: Vec<CompressedTrajectory> = training
        .iter()
        .map(|p| {
            let total: f64 = p.iter().map(|&e| net.weight(e)).sum();
            let traj = Trajectory::new(
                SpatialPath::new_unchecked(p.clone()),
                TemporalSequence::new(vec![DtPoint::new(0.0, 0.0), DtPoint::new(total, 60.0)])
                    .expect("temporal"),
            );
            press.compress(&traj).expect("compress")
        })
        .collect();
    let engine = QueryEngine::new(press.model());
    let good = TrajectoryStore::to_store_bytes(&engine, &compressed, 4).expect("bytes");

    let dir = std::env::temp_dir().join(format!("press-store-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    // 0-byte file: typed truncation, not a panic.
    let empty = dir.join("empty.press");
    std::fs::write(&empty, []).expect("write");
    assert!(matches!(
        TrajectoryStore::open(&empty),
        Err(PressError::Store(StoreError::Truncated { .. }))
    ));

    // Truncation inside the section directory: the container header
    // (24 bytes) survives, but the 40-byte directory entries are torn at
    // every possible misalignment. Every cut is a typed error.
    let torn = dir.join("torn.press");
    for cut in [25, 24 + 13, 24 + 40, 24 + 40 + 39, 24 + 2 * 40 + 1] {
        assert!(cut < good.len(), "fixture must outsize the cut at {cut}");
        std::fs::write(&torn, &good[..cut]).expect("write");
        let r = TrajectoryStore::open(&torn);
        assert!(r.is_err(), "directory cut at byte {cut} must fail");
        assert!(
            matches!(r, Err(PressError::Store(_))),
            "directory cut at byte {cut} must be a typed store error"
        );
    }

    // The untruncated bytes still load (the matrix above tested the cuts,
    // not a broken fixture).
    std::fs::write(&torn, &good).expect("write");
    assert_eq!(
        TrajectoryStore::open(&torn).expect("full file loads").len(),
        compressed.len()
    );
    // decode_all returns the corpus in index order (the recovery path).
    let store = TrajectoryStore::open(&torn).expect("open");
    assert_eq!(store.decode_all().expect("decode_all"), compressed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Index-section corruption matrix: a bit flip inside the persisted
/// synopsis index is a CRC failure; a CRC-valid but logically wrong
/// index is a typed `Corrupt` error; a *stripped* index section (a file
/// written before the index existed) loads fine and answers identically
/// — the index is rebuilt in memory, never guessed.
#[test]
fn index_section_corruption_matrix() {
    use press_store::{IndexEntry, StoreError, StoreFile, StoreWriter, SynopsisIndex};
    let net = net_from(5, 5, 0.1, 19);
    let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
    let mut training = Vec::new();
    for s in 0..16u64 {
        let choices: Vec<u8> = (0..10).map(|i| ((s * 9 + i * 5) % 5) as u8).collect();
        let p = walk_from_choices(&net, (s * 3) as u32, &choices);
        if p.len() >= 3 {
            training.push(p);
        }
    }
    let model = HscModel::train(sp, &training, 3).expect("train");
    let press = Press::with_model(Arc::new(model), PressConfig::default());
    let compressed: Vec<CompressedTrajectory> = training
        .iter()
        .enumerate()
        .map(|(k, p)| {
            let total: f64 = p.iter().map(|&e| net.weight(e)).sum();
            let traj = Trajectory::new(
                SpatialPath::new_unchecked(p.clone()),
                TemporalSequence::new(vec![
                    DtPoint::new(0.0, k as f64 * 200.0),
                    DtPoint::new(total, k as f64 * 200.0 + 80.0),
                ])
                .expect("temporal"),
            );
            press.compress(&traj).expect("compress")
        })
        .collect();
    let engine = QueryEngine::new(press.model());
    let good = TrajectoryStore::to_store_bytes(&engine, &compressed, 3).expect("bytes");
    let store = TrajectoryStore::from_store_bytes(good.clone()).expect("load");
    let region = Mbr::new(-1e9, -1e9, 1e9, 1e9);
    let reference = store.range(&engine, 0.0, 700.0, &region).expect("range");

    // Rewrites the container, replacing the index section via `f`.
    let rebuild = |f: &dyn Fn(&[u8]) -> Option<Vec<u8>>| -> Vec<u8> {
        let file = StoreFile::from_bytes(good.clone()).expect("parse");
        let mut w = StoreWriter::new(file.kind());
        for name in file.section_names() {
            let payload = file.section(name).expect("section");
            if name == "index" {
                if let Some(p) = f(payload) {
                    w.section(name, p);
                }
            } else {
                w.section(name, payload.to_vec());
            }
        }
        w.to_bytes()
    };

    // 1. Bit flip inside the index payload: the section CRC catches it.
    let index_payload = store.synopsis_index().to_section_bytes();
    let pos = good
        .windows(index_payload.len())
        .position(|w| w == index_payload)
        .expect("index payload must appear in the file");
    let mut flipped = good.clone();
    flipped[pos + index_payload.len() / 2] ^= 0x10;
    match TrajectoryStore::from_store_bytes(flipped) {
        Err(PressError::Store(StoreError::ChecksumMismatch { section })) => {
            assert_eq!(section, "index")
        }
        other => panic!("expected index checksum mismatch, got {other:?}"),
    }

    // 2. CRC-valid but logically wrong index (one leaf dropped): typed
    //    Corrupt, never a silently wrong answer.
    let wrong = rebuild(&|payload: &[u8]| {
        let idx = SynopsisIndex::from_section_bytes(payload).expect("decode");
        let leaves: Vec<IndexEntry> = (0..idx.num_leaves() - 1).map(|i| *idx.leaf(i)).collect();
        Some(SynopsisIndex::build(leaves, idx.branching()).to_section_bytes())
    });
    assert!(matches!(
        TrajectoryStore::from_store_bytes(wrong),
        Err(PressError::Store(StoreError::Corrupt(_)))
    ));

    // 3. Stripped index section (pre-index file): loads, rebuilds in
    //    memory, and answers identically.
    let stripped = rebuild(&|_| None);
    let file = StoreFile::from_bytes(stripped.clone()).expect("parse");
    assert!(!file.has_section("index"));
    let old = TrajectoryStore::from_store_bytes(stripped).expect("pre-index file must load");
    assert_eq!(
        old.range(&engine, 0.0, 700.0, &region).expect("range"),
        reference
    );
    assert_eq!(
        old.range_linear(&engine, 0.0, 700.0, &region)
            .expect("linear"),
        reference
    );
    assert_eq!(old.synopsis_index(), store.synopsis_index());
}

/// End-to-end: a trajectory corpus written as a block store round-trips
/// and answers queries identically to the in-memory compressed forms.
#[test]
fn trajectory_store_end_to_end() {
    let net = net_from(6, 6, 0.15, 42);
    let sp: Arc<dyn SpProvider> = Arc::new(SpTable::build(net.clone()));
    let mut training = Vec::new();
    for s in 0..40u64 {
        let choices: Vec<u8> = (0..16).map(|i| ((s * 13 + i * 5) % 6) as u8).collect();
        let p = walk_from_choices(&net, (s * 7) as u32, &choices);
        if p.len() >= 4 {
            training.push(p);
        }
    }
    let model = HscModel::train(sp, &training, 3).expect("train");
    let press = Press::with_model(Arc::new(model), PressConfig::default());
    let trajs: Vec<Trajectory> = training
        .iter()
        .enumerate()
        .map(|(k, p)| {
            let total: f64 = p.iter().map(|&e| net.weight(e)).sum();
            let pts = vec![
                DtPoint::new(0.0, k as f64 * 100.0),
                DtPoint::new(total / 2.0, k as f64 * 100.0 + 40.0),
                DtPoint::new(total, k as f64 * 100.0 + 90.0),
            ];
            Trajectory::new(
                SpatialPath::new_unchecked(p.clone()),
                TemporalSequence::new(pts).expect("temporal"),
            )
        })
        .collect();
    let compressed: Vec<CompressedTrajectory> = trajs
        .iter()
        .map(|t| press.compress(t).expect("compress"))
        .collect();
    let engine = QueryEngine::new(press.model());
    let dir = std::env::temp_dir().join(format!("press-trajstore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("corpus.press");
    TrajectoryStore::create(&path, &engine, &compressed, 6).expect("create");
    let store = TrajectoryStore::open(&path).expect("open");
    assert_eq!(store.len(), compressed.len());
    for (i, ct) in compressed.iter().enumerate() {
        assert_eq!(&store.get(i).expect("get"), ct);
    }
    // Queries equal the in-memory engine.
    for (i, (traj, ct)) in trajs.iter().zip(&compressed).enumerate().step_by(3) {
        let (t0, t1) = traj.temporal.time_range().expect("range");
        let t = (t0 + t1) / 2.0;
        let mem = engine.whereat(ct, t).expect("whereat");
        let disk = store.whereat(&engine, i, t).expect("whereat disk");
        assert_eq!(mem.x.to_bits(), disk.x.to_bits());
        assert_eq!(mem.y.to_bits(), disk.y.to_bits());
    }
    // The staggered time spans let range skip blocks; results match brute force.
    let bb = net.bounding_box();
    let region = Mbr::new(bb.min_x, bb.min_y, bb.max_x, bb.max_y);
    let hits = store.range(&engine, 0.0, 250.0, &region).expect("range");
    let brute: Vec<usize> = compressed
        .iter()
        .enumerate()
        .filter(|(_, ct)| {
            let (a, z) = ct.temporal.time_range().expect("range");
            z >= 0.0 && a <= 250.0 && engine.range(ct, 0.0, 250.0, &region).expect("range")
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits, brute);
    let (_, skipped) = store.io_stats();
    assert!(skipped > 0, "time-span synopses must have skipped blocks");
    let _ = std::fs::remove_dir_all(&dir);
}
